package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestListAnalyzers checks that every registered analyzer shows up in -list.
func TestListAnalyzers(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run(-list) = %v", err)
	}
	for _, name := range []string{"poolcheck", "fingerprintcheck", "registrycheck", "ctxcheck"} {
		if !strings.Contains(out.String(), name+": ") {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks the -run flag rejects unregistered names.
func TestUnknownAnalyzer(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "nosuch"}, &out); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("run(-run nosuch) = %v, want unknown analyzer error", err)
	}
}

// TestCleanPackage drives the full load-and-analyze pipeline over one real
// repo package that must be finding-free.
func TestCleanPackage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"nocbt/internal/bitutil"}, &out); err != nil {
		t.Fatalf("run(nocbt/internal/bitutil) = %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", out.String())
	}
}
