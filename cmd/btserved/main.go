// Command btserved is the long-running serving daemon over the nocbt
// simulator: an HTTP/JSON service executing inference requests on a
// sharded pool of warm accelerator engines via an adaptive micro-batcher,
// with a content-addressed result cache in front of experiments and
// inferences.
//
// Usage:
//
//	btserved [-addr :8344] [-replicas 2] [-max-batch 8] [-batch-window 2ms]
//	         [-cache-entries 256] [-cache-dir DIR] [-trace-spans 4096] [-pprof]
//
// Endpoints (see internal/serve):
//
//	GET  /healthz              liveness + uptime
//	GET  /metrics              Prometheus text counters, histograms and gauges
//	GET  /v1/experiments       registered experiments
//	POST /v1/experiments/run   {"name":"fig12","params":{"seed":1}}
//	POST /v1/infer             {"model":"lenet","seed":1,"input_seed":7}
//	GET  /debug/trace          newest serving spans as Chrome trace-event JSON
//	GET  /debug/pprof/         net/http/pprof (only with -pprof)
//
// Every request is answered with an X-Request-ID header and logged as one
// structured slog record; error bodies repeat the request ID.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocbt/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}
}

// testOnListen, when set by a test, observes the bound address.
var testOnListen func(net.Addr)

// run parses flags, builds the serving stack and serves until ctx is
// cancelled (then drains connections and returns nil).
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("btserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	replicas := fs.Int("replicas", 2, "warm engines per (platform, model, seed) shard")
	maxBatch := fs.Int("max-batch", 8, "micro-batch flush size (1 disables coalescing)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "micro-batch flush deadline")
	cacheEntries := fs.Int("cache-entries", 256, "result cache memory-tier capacity")
	cacheDir := fs.String("cache-dir", "", "result cache disk tier (empty: memory only)")
	traceSpans := fs.Int("trace-spans", 4096, "span ring capacity for /debug/trace (negative disables)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	srv, err := serve.New(serve.Config{
		Replicas:     *replicas,
		MaxBatch:     *maxBatch,
		BatchWindow:  *batchWindow,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		TraceSpans:   *traceSpans,
		EnablePprof:  *enablePprof,
		Logger:       slog.New(slog.NewTextHandler(stdout, nil)),
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if testOnListen != nil {
		testOnListen(ln.Addr())
	}
	fmt.Fprintf(stdout, "btserved: listening on %s (replicas=%d max-batch=%d window=%v)\n",
		ln.Addr(), *replicas, *maxBatch, *batchWindow)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(stdout, "btserved: shutting down")
		//nocbtlint:ignore ctxcheck: the parent ctx is already cancelled here; the shutdown grace period needs its own clock
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // Serve has returned http.ErrServerClosed
		return nil
	}
}
