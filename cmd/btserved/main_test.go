package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer runs the daemon on an ephemeral port and returns its base
// URL plus a stop func that triggers graceful shutdown and waits for run
// to return.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrs := make(chan net.Addr, 1)
	testOnListen = func(a net.Addr) { addrs <- a }
	t.Cleanup(func() { testOnListen = nil })

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out) }()

	select {
	case a := <-addrs:
		return "http://" + a.String(), func() error {
			cancel()
			select {
			case err := <-done:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("shutdown timed out")
			}
		}
	case err := <-done:
		t.Fatalf("server exited before listening: %v (output: %s)", err, out.String())
		return "", nil
	case <-time.After(10 * time.Second):
		t.Fatal("server never started listening")
		return "", nil
	}
}

func TestServeHealthzAndGracefulShutdown(t *testing.T) {
	base, stop := startServer(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	if err := stop(); err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
}

func TestServeExperimentRoundTripWithCache(t *testing.T) {
	base, stop := startServer(t)
	defer stop()

	req := `{"name":"fig1","params":{"quick":true,"step":16}}`
	var bodies [][]byte
	var caches []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/experiments/run", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, resp.StatusCode, b)
		}
		bodies = append(bodies, b)
		caches = append(caches, resp.Header.Get("X-Cache"))
	}
	if caches[0] != "miss" || caches[1] != "hit" {
		t.Errorf("X-Cache sequence %v, want [miss hit]", caches)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("cached response not byte-identical")
	}
	var res struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(bodies[0], &res); err != nil || res.Experiment != "fig1" {
		t.Errorf("experiment = %q, err %v", res.Experiment, err)
	}
}

func TestFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-nope"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(ctx, []string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run(ctx, []string{"-h"}, &out); err != nil {
		t.Errorf("-h should not be an error: %v", err)
	}
	if err := run(ctx, []string{"-replicas", "-3"}, &out); err == nil {
		t.Error("negative replicas accepted")
	}
}
