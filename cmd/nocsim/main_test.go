package main

import (
	"strings"
	"testing"
)

func TestRunSmallMesh(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "2x2", "-packets", "20", "-flits", "2", "-link", "32", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mesh 2x2, 20 packets x 3 flits, 32-bit links",
		"delivered packets: 20",
		"total BT (paper):",
		"r0.local->ni0", // -v per-link table
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	runOnce := func() string {
		var sb strings.Builder
		if err := run([]string{"-mesh", "2x2", "-packets", "10", "-link", "16", "-seed", "7"}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if runOnce() != runOnce() {
		t.Error("same seed produced different reports")
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-h"}, &sb); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mesh", "wide"}, &sb); err == nil || !strings.Contains(err.Error(), "bad -mesh") {
		t.Errorf("bad mesh not rejected: %v", err)
	}
	if err := run([]string{"-mesh", "1x1", "-packets", "1"}, &sb); err == nil {
		t.Error("1x1 mesh with traffic not rejected")
	}
	if err := run([]string{"-mesh", "0x4"}, &sb); err == nil {
		t.Error("0-width mesh not rejected")
	}
}
