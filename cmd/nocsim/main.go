// Command nocsim runs the standalone NoC simulator under a synthetic
// uniform-random traffic pattern and reports per-link bit transition
// statistics — useful for exploring the interconnect without a DNN
// workload.
//
// Usage:
//
//	nocsim [-mesh 4x4] [-topology mesh] [-packets 1000] [-flits 4]
//	       [-link 128] [-seed 1] [-v] [-trace out.json]
//
// With -trace, the full packet lifecycle (inject, per-hop link traversal
// with per-hop BT, NI reassembly) is exported as Chrome trace-event JSON —
// load it in https://ui.perfetto.dev (1 cycle = 1 µs).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"nocbt/internal/bitutil"
	"nocbt/internal/flit"
	"nocbt/internal/noc"
	"nocbt/internal/obs"
	"nocbt/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nocsim", flag.ContinueOnError)
	mesh := fs.String("mesh", "4x4", "terminal grid size WxH")
	topology := fs.String("topology", "", "interconnect topology: mesh (default), torus or cmesh")
	concentration := fs.Int("concentration", 0, "cmesh terminals per router (2 or 4; 0 = the topology default)")
	packets := fs.Int("packets", 1000, "packets to inject")
	flits := fs.Int("flits", 4, "payload flits per packet")
	linkBits := fs.Int("link", 128, "link width in bits")
	seed := fs.Int64("seed", 1, "traffic seed")
	verbose := fs.Bool("v", false, "print per-link statistics")
	traceOut := fs.String("trace", "", "write the packet lifecycle as Chrome trace-event JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; a help request is not a failure
		}
		return err
	}

	var w, h int
	if _, err := fmt.Sscanf(*mesh, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %w", *mesh, err)
	}
	topo, ok := noc.CanonicalTopologyName(*topology)
	if !ok {
		return fmt.Errorf("unknown -topology %q (registered: %v)", *topology, noc.TopologyNames())
	}
	cfg := noc.Config{Width: w, Height: h, Topology: topo, Concentration: *concentration, VCs: 4, BufDepth: 4, LinkBits: *linkBits}
	sim, err := noc.New(cfg)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		sim.SetSpanTracer(tracer)
	}

	rng := rand.New(rand.NewSource(*seed))
	nodes := cfg.Nodes()
	if nodes < 2 {
		return fmt.Errorf("mesh %q has %d node(s); need at least 2 for traffic", *mesh, nodes)
	}
	for i := 0; i < *packets; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		for dst == src {
			dst = rng.Intn(nodes)
		}
		payloads := make([]bitutil.Vec, *flits)
		for j := range payloads {
			v := bitutil.NewVec(*linkBits)
			for b := 0; b < *linkBits; b += 64 {
				width := 64
				if b+width > *linkBits {
					width = *linkBits - b
				}
				v.SetField(b, width, rng.Uint64())
			}
			payloads[j] = v
		}
		header := bitutil.NewVec(*linkBits)
		idBits := 32
		if idBits > *linkBits {
			idBits = *linkBits
		}
		header.SetField(0, idBits, uint64(i)&(1<<uint(idBits)-1))
		pkt := flit.NewPacket(uint64(i+1), src, dst, header, payloads)
		if err := sim.Inject(pkt); err != nil {
			return err
		}
	}
	if err := sim.Drain(100_000_000); err != nil {
		return err
	}
	if tracer != nil {
		var buf bytes.Buffer
		if err := tracer.WriteChrome(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace: %d spans -> %s", tracer.Len(), *traceOut)
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(stdout, " (%d spans dropped; ring full)", d)
		}
		fmt.Fprintln(stdout)
	}

	st := sim.Stats()
	fmt.Fprintf(stdout, "%s %dx%d, %d packets x %d flits, %d-bit links\n",
		noc.TopologyDisplayName(topo), w, h, *packets, *flits+1, *linkBits)
	fmt.Fprintf(stdout, "cycles:            %d\n", st.Cycles)
	fmt.Fprintf(stdout, "delivered packets: %d\n", st.PacketsDelivered)
	fmt.Fprintf(stdout, "router-link BT:    %d\n", st.RouterBT)
	fmt.Fprintf(stdout, "ejection BT:       %d\n", st.EjectionBT)
	fmt.Fprintf(stdout, "total BT (paper):  %d\n", sim.TotalBT())
	fmt.Fprintf(stdout, "avg latency:       %.1f cycles (max %d)\n", st.AvgLatency, st.MaxLatency)

	if *verbose {
		t := stats.NewTable("link", "class", "flits", "BT")
		for _, ls := range sim.LinkStats() {
			if ls.Flits == 0 {
				continue
			}
			t.AddRowf(ls.Name, ls.Class.String(), ls.Flits, ls.BT)
		}
		fmt.Fprintln(stdout)
		io.WriteString(stdout, t.String())
	}
	return nil
}
