// Command nocsim runs the standalone NoC simulator under a synthetic
// uniform-random traffic pattern and reports per-link bit transition
// statistics — useful for exploring the mesh without a DNN workload.
//
// Usage:
//
//	nocsim [-mesh 4x4] [-packets 1000] [-flits 4] [-link 128] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nocbt/internal/bitutil"
	"nocbt/internal/flit"
	"nocbt/internal/noc"
	"nocbt/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run() error {
	mesh := flag.String("mesh", "4x4", "mesh size WxH")
	packets := flag.Int("packets", 1000, "packets to inject")
	flits := flag.Int("flits", 4, "payload flits per packet")
	linkBits := flag.Int("link", 128, "link width in bits")
	seed := flag.Int64("seed", 1, "traffic seed")
	verbose := flag.Bool("v", false, "print per-link statistics")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(*mesh, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %w", *mesh, err)
	}
	cfg := noc.Config{Width: w, Height: h, VCs: 4, BufDepth: 4, LinkBits: *linkBits}
	sim, err := noc.New(cfg)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	nodes := cfg.Nodes()
	for i := 0; i < *packets; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		for dst == src {
			dst = rng.Intn(nodes)
		}
		payloads := make([]bitutil.Vec, *flits)
		for j := range payloads {
			v := bitutil.NewVec(*linkBits)
			for b := 0; b < *linkBits; b += 64 {
				width := 64
				if b+width > *linkBits {
					width = *linkBits - b
				}
				v.SetField(b, width, rng.Uint64())
			}
			payloads[j] = v
		}
		header := bitutil.NewVec(*linkBits)
		header.SetField(0, 32, uint64(i))
		pkt := flit.NewPacket(uint64(i+1), src, dst, header, payloads)
		if err := sim.Inject(pkt); err != nil {
			return err
		}
	}
	if err := sim.Drain(100_000_000); err != nil {
		return err
	}

	st := sim.Stats()
	fmt.Printf("mesh %dx%d, %d packets x %d flits, %d-bit links\n", w, h, *packets, *flits+1, *linkBits)
	fmt.Printf("cycles:            %d\n", st.Cycles)
	fmt.Printf("delivered packets: %d\n", st.PacketsDelivered)
	fmt.Printf("router-link BT:    %d\n", st.RouterBT)
	fmt.Printf("ejection BT:       %d\n", st.EjectionBT)
	fmt.Printf("total BT (paper):  %d\n", sim.TotalBT())
	fmt.Printf("avg latency:       %.1f cycles (max %d)\n", st.AvgLatency, st.MaxLatency)

	if *verbose {
		t := stats.NewTable("link", "class", "flits", "BT")
		for _, ls := range sim.LinkStats() {
			if ls.Flits == 0 {
				continue
			}
			t.AddRowf(ls.Name, ls.Class.String(), ls.Flits, ls.BT)
		}
		fmt.Println()
		fmt.Print(t.String())
	}
	return nil
}
