// Command dnntrain trains LeNet (or the DarkNet-like model) on the
// synthetic digit-glyph dataset and reports per-epoch loss/accuracy plus
// the bit-level weight statistics the BT experiments consume.
//
// Usage:
//
//	dnntrain [-model lenet|darknet] [-samples 300] [-epochs 8] [-lr 0.002] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nocbt/internal/bitutil"
	"nocbt/internal/dnn"
	"nocbt/internal/quant"
	"nocbt/internal/stats"
	"nocbt/internal/train"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnntrain:", err)
		os.Exit(1)
	}
}

func run() error {
	modelName := flag.String("model", "lenet", "lenet or darknet")
	samples := flag.Int("samples", 300, "training samples")
	epochs := flag.Int("epochs", 8, "training epochs")
	lr := flag.Float64("lr", 0.002, "learning rate")
	seed := flag.Int64("seed", 1, "init/dataset seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var model *dnn.Model
	switch *modelName {
	case "lenet":
		model = dnn.LeNet(rng)
	case "darknet":
		model = dnn.DarkNetTiny(rng)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	fmt.Printf("%s: %d parameters, input %v\n", model.Name(), model.ParamCount(), model.InShape)

	ds := train.SyntheticDigits(*samples, model.InShape, rng)
	trainer := train.NewTrainer(model, train.Config{LR: float32(*lr), Epochs: *epochs})
	for e := 0; e < *epochs; e++ {
		st := trainer.Epoch(ds, rng)
		fmt.Printf("epoch %2d: loss %.4f, accuracy %.2f\n", e+1, st.MeanLoss, st.Accuracy)
	}
	holdout := train.SyntheticDigits(200, model.InShape, rng)
	fmt.Printf("holdout accuracy: %.2f\n", train.Evaluate(model, holdout))

	// Bit-level summary of the trained weights (per-layer fixed-8).
	var qs []int8
	for _, layer := range model.LayerWeightSlices() {
		qs = append(qs, quant.Choose(layer).QuantizeSlice(layer)...)
	}
	words := bitutil.Fixed8Words(qs)
	dist := stats.BitDist(words, 8)
	fmt.Println("\nfixed-8 weight bit distribution (MSB first):")
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("bit %d", 7-i)
	}
	fmt.Print(stats.RenderBars(labels, dist.MSBFirst(), 1, 40))
	return nil
}
