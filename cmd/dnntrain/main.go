// Command dnntrain trains LeNet (or the DarkNet-like model) on the
// synthetic digit-glyph dataset and reports per-epoch loss/accuracy plus
// the bit-level weight statistics the BT experiments consume.
//
// Usage:
//
//	dnntrain [-model lenet|darknet] [-samples 300] [-epochs 8] [-lr 0.002] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"nocbt/internal/bitutil"
	"nocbt/internal/dnn"
	"nocbt/internal/quant"
	"nocbt/internal/stats"
	"nocbt/internal/train"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnntrain:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dnntrain", flag.ContinueOnError)
	modelName := fs.String("model", "lenet", "lenet or darknet")
	samples := fs.Int("samples", 300, "training samples")
	epochs := fs.Int("epochs", 8, "training epochs")
	lr := fs.Float64("lr", 0.002, "learning rate")
	seed := fs.Int64("seed", 1, "init/dataset seed")
	holdout := fs.Int("holdout", 200, "holdout samples for the final accuracy")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // usage already printed; a help request is not a failure
		}
		return err
	}
	if *samples < 1 || *epochs < 1 || *holdout < 1 {
		return fmt.Errorf("-samples, -epochs and -holdout must be >= 1 (got %d, %d, %d)",
			*samples, *epochs, *holdout)
	}

	rng := rand.New(rand.NewSource(*seed))
	var model *dnn.Model
	switch *modelName {
	case "lenet":
		model = dnn.LeNet(rng)
	case "darknet":
		model = dnn.DarkNetTiny(rng)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	fmt.Fprintf(stdout, "%s: %d parameters, input %v\n", model.Name(), model.ParamCount(), model.InShape)

	ds := train.SyntheticDigits(*samples, model.InShape, rng)
	trainer := train.NewTrainer(model, train.Config{LR: float32(*lr), Epochs: *epochs})
	for e := 0; e < *epochs; e++ {
		st := trainer.Epoch(ds, rng)
		fmt.Fprintf(stdout, "epoch %2d: loss %.4f, accuracy %.2f\n", e+1, st.MeanLoss, st.Accuracy)
	}
	eval := train.SyntheticDigits(*holdout, model.InShape, rng)
	fmt.Fprintf(stdout, "holdout accuracy: %.2f\n", train.Evaluate(model, eval))

	// Bit-level summary of the trained weights (per-layer fixed-8).
	var qs []int8
	for _, layer := range model.LayerWeightSlices() {
		qs = append(qs, quant.Choose(layer).QuantizeSlice(layer)...)
	}
	words := bitutil.Fixed8Words(qs)
	dist := stats.BitDist(words, 8)
	fmt.Fprintln(stdout, "\nfixed-8 weight bit distribution (MSB first):")
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("bit %d", 7-i)
	}
	io.WriteString(stdout, stats.RenderBars(labels, dist.MSBFirst(), 1, 40))
	return nil
}
