package main

import (
	"strings"
	"testing"
)

func TestRunTinyLeNet(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-samples", "8", "-epochs", "1", "-holdout", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"LeNet:",
		"epoch  1: loss",
		"holdout accuracy:",
		"fixed-8 weight bit distribution",
		"bit 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTinyDarkNet(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "darknet", "-samples", "2", "-epochs", "1", "-holdout", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DarkNet:") {
		t.Errorf("output missing model header:\n%s", sb.String())
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-h"}, &sb); err != nil {
		t.Errorf("-h returned error: %v", err)
	}
}

func TestRunUnknownModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "resnet"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model not rejected: %v", err)
	}
}

func TestRunRejectsDegenerateSizes(t *testing.T) {
	for _, args := range [][]string{
		{"-holdout", "0"}, // would print "holdout accuracy: NaN"
		{"-samples", "0"},
		{"-epochs", "0"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil || !strings.Contains(err.Error(), ">= 1") {
			t.Errorf("%v not rejected: %v", args, err)
		}
	}
}
