// power_report converts measured bit transitions into link energy and
// power using the paper's §V-C link models, and prints the Tab. II
// hardware-cost comparison for the ordering unit.
package main

import (
	"context"
	"fmt"
	"log"

	"nocbt"
	"nocbt/internal/hwmodel"
)

func main() {
	model := nocbt.LeNet(1)
	input := nocbt.SampleInput(model, 7)

	// Measure O0 vs O2 transitions for one inference on the default mesh.
	var btO0, btO2 int64
	var cycles int64
	for _, ord := range []nocbt.Ordering{nocbt.O0, nocbt.O2} {
		r, err := nocbt.RunModelOnNoC(context.Background(), "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), ord, model, input)
		if err != nil {
			log.Fatal(err)
		}
		if ord == nocbt.O0 {
			btO0 = r.TotalBT
		} else {
			btO2 = r.TotalBT
			cycles = r.Cycles
		}
	}
	reduction := 1 - float64(btO2)/float64(btO0)
	fmt.Printf("one LeNet inference, 4x4 MC2 fixed-8: O0=%d BT, O2=%d BT (%.2f%% reduction)\n",
		btO0, btO2, 100*reduction)

	// Convert to energy with both §V-C link models.
	for _, m := range []struct {
		name   string
		energy float64
	}{
		{"ours (0.173 pJ/transition)", hwmodel.EnergyPerTransitionOurs},
		{"Banerjee (0.532 pJ/transition)", hwmodel.EnergyPerTransitionBanerjee},
	} {
		lm := hwmodel.PaperLinkModel(m.energy)
		e0 := lm.EnergyForTransitions(btO0)
		e2 := lm.EnergyForTransitions(btO2)
		// Average power over the inference at 125 MHz.
		t := float64(cycles) / lm.FreqHz
		fmt.Printf("%-32s energy %.3f uJ -> %.3f uJ; avg link power %.2f mW -> %.2f mW\n",
			m.name, e0*1e6, e2*1e6, e0/t*1e3, e2/t*1e3)
	}

	fmt.Println()
	fmt.Print(nocbt.Table2Report())
	fmt.Println()
	fmt.Print(nocbt.LinkPowerReport(100 * reduction))
}
