// darknet_sweep runs the DarkNet-like model (64×64×3 input, as the paper
// reduces it) across both data formats and all orderings on the default
// platform — the DarkNet half of Fig. 13 — using the concurrent sweep
// runner, so the six (format, ordering) measurements run in parallel.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"nocbt"
)

func main() {
	trained := flag.Bool("trained", false, "briefly train the model first (slower)")
	flag.Parse()

	if *trained {
		fmt.Println("training DarkNet on the synthetic digit dataset...")
	}
	rows, err := nocbt.RunSweep(context.Background(), nocbt.SweepSpec{
		Platforms: []nocbt.NamedPlatform{nocbt.DefaultPlatform()},
		Models:    []nocbt.SweepModel{nocbt.DarkNetModel},
		Trained:   *trained,
		Seeds:     []int64{1},
	})
	if err != nil {
		log.Fatal(err)
	}

	var baseline int64
	for _, r := range rows {
		if r.Ordering == nocbt.O0 {
			baseline = r.TotalBT
		}
		fmt.Printf("%-22s %s: BT=%13d  normalized=%.3f  (%.2f%% reduction)\n",
			r.Geometry, r.Ordering, r.TotalBT,
			float64(r.TotalBT)/float64(baseline), r.ReductionPct)
	}
}
