// darknet_sweep runs the DarkNet-like model (64×64×3 input, as the paper
// reduces it) across both data formats and all orderings on the default
// platform — the DarkNet half of Fig. 13.
package main

import (
	"flag"
	"fmt"
	"log"

	"nocbt"
)

func main() {
	trained := flag.Bool("trained", false, "briefly train the model first (slower)")
	flag.Parse()

	model := nocbt.DarkNet(1)
	if *trained {
		fmt.Println("training DarkNet on the synthetic digit dataset...")
		model = nocbt.TrainedDarkNet(1)
	}
	input := nocbt.SampleInput(model, 7)

	for _, g := range []nocbt.Geometry{nocbt.Float32(), nocbt.Fixed8()} {
		var baseline int64
		for _, ord := range nocbt.Orderings() {
			r, err := nocbt.RunModelOnNoC("4x4 MC2", nocbt.Platform4x4MC2(g), ord, model, input)
			if err != nil {
				log.Fatal(err)
			}
			if ord == nocbt.O0 {
				baseline = r.TotalBT
			}
			fmt.Printf("%-22s %s: BT=%13d  normalized=%.3f  (%.2f%% reduction)\n",
				g, ord, r.TotalBT,
				float64(r.TotalBT)/float64(baseline),
				100*(1-float64(r.TotalBT)/float64(baseline)))
		}
	}
}
