// Quickstart: run one LeNet inference through the NoC-based DNN accelerator
// with each transmission ordering and compare the link bit transitions.
package main

import (
	"context"
	"fmt"
	"log"

	"nocbt"
)

func main() {
	ctx := context.Background()

	// LeNet with random weights; the input is a synthetic digit image.
	model := nocbt.LeNet(1)
	input := nocbt.SampleInput(model, 7)

	var baseline int64
	for _, ord := range nocbt.Orderings() {
		// The paper's default platform, composed from options: 4×4 mesh,
		// 2 perimeter memory controllers, 128-bit links carrying 16
		// fixed-8 values per flit.
		cfg, err := nocbt.NewPlatform(
			nocbt.WithMesh(4, 4),
			nocbt.WithMCCount(2),
			nocbt.WithGeometry(nocbt.Fixed8()),
			nocbt.WithOrdering(ord),
		)
		if err != nil {
			log.Fatal(err)
		}

		eng, err := nocbt.NewEngine(cfg, model)
		if err != nil {
			log.Fatal(err)
		}
		out, err := eng.Infer(ctx, input)
		if err != nil {
			log.Fatal(err)
		}

		bt := eng.TotalBT()
		if ord == nocbt.O0 {
			baseline = bt
		}
		reduction := 100 * (1 - float64(bt)/float64(baseline))
		fmt.Printf("%s: %12d bit transitions  (%5.2f%% reduction)  cycles=%d  top class=%d\n",
			ord, bt, reduction, eng.Cycles(), argmax(out.Data))
	}
}

func argmax(v []float32) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
