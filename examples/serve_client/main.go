// Serve client: spin up the serving subsystem in-process on an ephemeral
// port, then act as an HTTP client against it — the request patterns a
// production deployment of cmd/btserved sees. The example fires a burst
// of concurrent /v1/infer requests (watch batch_size: the adaptive
// micro-batcher coalesces them), repeats an experiment run to show the
// content-addressed cache answering byte-identically, and finishes with
// the /metrics counters.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"nocbt/internal/serve"
)

func main() {
	srv, err := serve.New(serve.Config{
		Replicas:    2,
		MaxBatch:    4,
		BatchWindow: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("btserved stack listening on %s\n\n", ts.URL)

	// A burst of concurrent inferences on the default platform (4×4 mesh,
	// O2 separated-ordering, pipelined layers). LeNet with untrained
	// weights keeps the example fast; trained weights would train once and
	// memoize.
	const burst = 6
	fmt.Printf("POST /v1/infer — burst of %d concurrent requests\n", burst)
	var wg sync.WaitGroup
	results := make([]serve.InferResponse, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"model":"lenet","seed":1,"input_seed":%d}`, i)
			var r serve.InferResponse
			if err := post(ts.URL+"/v1/infer", body, &r); err != nil {
				log.Fatal(err)
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		fmt.Printf("  input_seed=%d batch_size=%d latency=%d cycles output[0]=%.4f\n",
			i, r.BatchSize, r.LatencyCycles, r.Output[0])
	}

	// The same request again: answered from the content-addressed cache
	// without touching a mesh.
	var cached serve.InferResponse
	if err := post(ts.URL+"/v1/infer", `{"model":"lenet","seed":1,"input_seed":0}`, &cached); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepeat of input_seed=0: cached=%v (same output: %v)\n",
		cached.Cached, cached.Output[0] == results[0].Output[0])

	// Experiments run through the same cache; repeats are byte-identical.
	fmt.Println("\nPOST /v1/experiments/run — fig1 twice")
	req := `{"name":"fig1","params":{"quick":true,"step":8}}`
	first, hdr1, err := postRaw(ts.URL+"/v1/experiments/run", req)
	if err != nil {
		log.Fatal(err)
	}
	second, hdr2, err := postRaw(ts.URL+"/v1/experiments/run", req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  first:  X-Cache=%s (%d bytes)\n", hdr1, len(first))
	fmt.Printf("  second: X-Cache=%s, byte-identical=%v\n", hdr2, bytes.Equal(first, second))

	// The serving counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nGET /metrics (counters only):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			fmt.Println("  " + line)
		}
	}
}

// post sends a JSON body and decodes the JSON response into out.
func post(url, body string, out any) error {
	data, _, err := postRaw(url, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// postRaw sends a JSON body and returns the raw response plus its X-Cache
// header.
func postRaw(url, body string) ([]byte, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: %s: %s", url, resp.Status, data)
	}
	return data, resp.Header.Get("X-Cache"), nil
}
