// lenet_noc reproduces the heart of the paper's Fig. 12 interactively: a
// trained LeNet runs on three NoC platforms (4×4/MC2, 8×8/MC4, 8×8/MC8)
// under all three orderings, printing per-layer traffic for the default
// platform.
package main

import (
	"context"
	"fmt"
	"log"

	"nocbt"
)

func main() {
	ctx := context.Background()
	fmt.Println("training LeNet on the synthetic digit dataset (one-time, ~30s)...")
	model := nocbt.TrainedLeNet(1)
	input := nocbt.SampleInput(model, 7)

	platforms := []struct {
		name string
		cfg  nocbt.Platform
	}{
		{"4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8())},
		{"8x8 MC4", nocbt.Platform8x8MC4(nocbt.Fixed8())},
		{"8x8 MC8", nocbt.Platform8x8MC8(nocbt.Fixed8())},
	}
	for _, p := range platforms {
		var baseline int64
		for _, ord := range nocbt.Orderings() {
			r, err := nocbt.RunModelOnNoC(ctx, p.name, p.cfg, ord, model, input)
			if err != nil {
				log.Fatal(err)
			}
			if ord == nocbt.O0 {
				baseline = r.TotalBT
			}
			fmt.Printf("%-8s %s: BT=%12d (%.2f%% reduction), %d cycles, %d packets\n",
				p.name, ord, r.TotalBT,
				100*(1-float64(r.TotalBT)/float64(baseline)), r.Cycles, r.Packets)
		}
	}

	// Per-layer traffic detail on the default platform with O2.
	cfg := nocbt.Platform4x4MC2(nocbt.Fixed8())
	cfg.Ordering = nocbt.O2
	eng, err := nocbt.NewEngine(cfg, model)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Infer(ctx, input); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-layer traffic (4x4 MC2, O2):")
	for _, ls := range eng.LayerStats() {
		if !ls.OverNoC {
			continue
		}
		fmt.Printf("  %-22s %6d tasks %8d flits %12d BT %8d cycles\n",
			ls.Name, ls.Tasks, ls.Flits, ls.BT, ls.Cycles)
	}
}
