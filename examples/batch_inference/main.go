// Batch inference: run a whole batch of inferences concurrently on the
// mesh with Engine.InferBatch and compare simulated throughput against the
// same inferences executed serially. The workload is a small, layer-heavy
// net on the 8×8/MC8 platform with a one-MAC-per-cycle PE (64-cycle segment
// latency): the compute-bound regime where layer tails leave a serial mesh
// idle and batching fills it.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"nocbt"
	"nocbt/internal/dnn"
	"nocbt/internal/tensor"
)

func microNet(seed int64) *dnn.Model {
	rng := rand.New(rand.NewSource(seed))
	return &dnn.Model{
		ModelName: "micro",
		InShape:   []int{1, 12, 12},
		Layers: []dnn.Layer{
			dnn.NewConv2D(1, 4, 3, 1, 1, rng),
			dnn.NewReLU(),
			dnn.NewMaxPool2(),
			dnn.NewConv2D(4, 8, 3, 1, 1, rng),
			dnn.NewReLU(),
			dnn.NewMaxPool2(),
			dnn.NewFlatten(),
			dnn.NewLinear(8*3*3, 10, rng),
		},
	}
}

func platform() nocbt.Platform {
	cfg := nocbt.Platform8x8MC8(nocbt.Fixed8())
	cfg.PEComputeCycles = 64 // one MAC per cycle over a full 64-pair segment
	return cfg
}

func main() {
	ctx := context.Background()
	const batch = 8
	model := microNet(1)
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		x := tensor.New(model.InShape...)
		x.Uniform(0, 1, rand.New(rand.NewSource(int64(10+i))))
		inputs[i] = x
	}

	// Serial reference: one inference at a time, mesh drained between them.
	serial, err := nocbt.NewEngine(platform(), model)
	if err != nil {
		log.Fatal(err)
	}
	serialOut := make([]*tensor.Tensor, batch)
	for i, in := range inputs {
		if serialOut[i], err = serial.Infer(ctx, in); err != nil {
			log.Fatal(err)
		}
	}

	// Batched: all eight inferences share the mesh concurrently
	// (PipelinedLayers; the SerialLayers default is the paper-faithful
	// one-inference-at-a-time discipline).
	cfg := platform()
	cfg.LayerMode = nocbt.PipelinedLayers
	batched, err := nocbt.NewEngine(cfg, model)
	if err != nil {
		log.Fatal(err)
	}
	batchOut, err := batched.InferBatch(ctx, inputs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range batchOut {
		for j := range batchOut[i].Data {
			if batchOut[i].Data[j] != serialOut[i].Data[j] {
				log.Fatalf("output %d diverged from serial inference", i)
			}
		}
	}

	st := batched.LastBatchStats()
	fmt.Printf("workload: %d × %s on 8x8 MC8 fixed-8, PE latency %d cycles\n",
		batch, model.Name(), platform().PEComputeCycles)
	fmt.Printf("serial : %7d cycles  (%.3f inferences/kcycle)\n",
		serial.Cycles(), float64(batch)*1000/float64(serial.Cycles()))
	fmt.Printf("batched: %7d cycles  (%.3f inferences/kcycle)  speedup %.2fx\n",
		st.Cycles, st.Throughput(), float64(serial.Cycles())/float64(st.Cycles))
	fmt.Printf("latency: avg %.0f cycles, max %d cycles\n", st.AvgLatencyCycles, st.MaxLatencyCycles)
	fmt.Println("outputs bit-identical to serial inference: yes")

	// The same axis is available on the sweep grid.
	rows, err := nocbt.RunSweep(ctx, nocbt.SweepSpec{
		Platforms:  []nocbt.NamedPlatform{{Name: "8x8 MC8", Build: nocbt.Platform8x8MC8}},
		Geometries: []nocbt.Geometry{nocbt.Fixed8()},
		Seeds:      []int64{1},
		Batches:    []int{1, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSweep with a batch axis (LeNet):")
	fmt.Print(nocbt.SweepReport(rows))
}
