package nocbt_test

// Runnable godoc examples for the v2 API: composing a platform with
// NewPlatform, enumerating and looking up registered experiments, and
// rendering a typed Result as JSON.

import (
	"context"
	"encoding/json"
	"fmt"

	"nocbt"
)

// ExampleNewPlatform composes a platform the v1 presets could not express:
// a 6×6 mesh with three memory controllers stacked down column 0.
func ExampleNewPlatform() {
	platform, err := nocbt.NewPlatform(
		nocbt.WithMesh(6, 6),
		nocbt.WithMCCount(3),
		nocbt.WithMCColumn(0),
		nocbt.WithGeometry(nocbt.Fixed8()),
		nocbt.WithOrdering(nocbt.O2),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(platform.Mesh.Width, "x", platform.Mesh.Height, "MCs at", platform.MCs)
	// Output: 6 x 6 MCs at [0 12 24]
}

// ExampleNewPlatform_validation shows the descriptive errors invalid
// configurations produce instead of panicking.
func ExampleNewPlatform_validation() {
	_, err := nocbt.NewPlatform(nocbt.WithMesh(1, 4))
	fmt.Println(err)
	// Output: nocbt: mesh 1x4 is smaller than the minimum 2x2
}

// ExampleLookupExperiment finds a registered experiment by name.
func ExampleLookupExperiment() {
	exp, ok := nocbt.LookupExperiment("power")
	fmt.Println(ok, exp.Name())
	// Output: true power
}

// ExampleExperimentNames enumerates the registry — every paper table and
// figure plus the open sweep and strategy-comparison grids.
func ExampleExperimentNames() {
	fmt.Println(nocbt.ExperimentNames())
	// Output: [codings fig1 fig10 fig11 fig12 fig13 fig9 power precision sweep table1 table2 topology]
}

// ExampleRender_json runs the §V-C link-power experiment and renders its
// typed Result as JSON.
func ExampleRender_json() {
	result, err := nocbt.RunExperiment(context.Background(), "power", nocbt.Params{BTReductionPct: 40.85})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := nocbt.Render(result, nocbt.JSON)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var decoded nocbt.Result
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(decoded.Experiment, decoded.Tables[0].Name, decoded.Tables[0].Columns[0])
	// Output: power link_power Link model
}
