package nocbt

// The "topology" experiment crosses the interconnect axis with the full
// strategy space: every registered topology (the paper's mesh, the
// wraparound torus, the concentrated mesh) × every registered ordering ×
// every registered link coding on the paper workloads. It answers the
// question the pluggable-topology layer exists for: how much of the
// ordering/coding BT reduction survives when the wires underneath change —
// and what each topology's wire budget and hop count cost in link power
// and latency.

import (
	"context"
	"fmt"

	"nocbt/internal/hwmodel"
	"nocbt/internal/noc"
)

func init() {
	MustRegister(NewExperiment("topology",
		"topology × ordering × coding grid — BT, latency and mean hops for mesh/torus/cmesh on the paper workloads",
		topologyResult))
}

// topologyPlatform is the grid's platform: the paper's 8×8/MC4, the size
// whose 112-link mesh §V-C prices — and the size where topology choice
// actually moves hop counts (a 4×4 torus saves almost nothing).
const topologyPlatformName = "8x8 MC4"

// topologyResult measures the topology grid. Params: Seed and Trained as
// in fig13; Quick restricts the workloads to LeNet.
func topologyResult(ctx context.Context, p Params) (*Result, error) {
	p = p.withDefaults()
	models := []SweepModel{LeNetModel, DarkNetModel}
	if p.Quick {
		models = models[:1]
	}
	platform, ok := LookupPaperPlatform(topologyPlatformName)
	if !ok {
		return nil, fmt.Errorf("nocbt: topology experiment platform %q not registered", topologyPlatformName)
	}
	spec := SweepSpec{
		Platforms:  []NamedPlatform{platform},
		Geometries: []Geometry{Fixed8()},
		Orderings:  codingsOrderings(),
		Models:     models,
		Trained:    p.Trained,
		Seeds:      []int64{p.Seed},
		Codings:    LinkCodingNames(),
		Topologies: TopologyNames(),
	}
	rows, err := RunSweep(ctx, spec)
	if err != nil {
		return nil, err
	}

	// Per-topology wire budget: bidirectional link pairs of the 8×8
	// terminal grid, straight from each Topology's own Links() — the
	// generalization of the paper's hard-coded 112.
	linkPairs := make(map[string]int)
	for _, name := range TopologyNames() {
		canonical, _ := CanonicalTopologyName(name)
		topo, err := noc.Config{Width: 8, Height: 8, Topology: canonical}.BuildTopology()
		if err != nil {
			return nil, fmt.Errorf("nocbt: topology experiment: %w", err)
		}
		linkPairs[canonical] = topo.Links() / 2
	}

	// The reduction baseline for every row is the same model's plain-mesh
	// O0 uncoded run — the paper's reference platform.
	type baseKey struct{ model string }
	baselines := make(map[baseKey]float64)
	for _, r := range rows {
		if r.Ordering == O0 && r.Coding == "none" && r.Topology == "" {
			baselines[baseKey{r.Model}] = float64(r.TotalBT)
		}
	}

	table := ResultTable{
		Name: "topology",
		Columns: []string{"Model", "Topology", "Ordering", "Coding", "Links",
			"Total BT", "Cycles", "Mean hops", "Reduction % vs mesh O0", "Link power mW"},
	}
	// Mean hop count per topology (router-link flit-hops over injected
	// flits), aggregated across the grid — the number CI asserts shrinks
	// on torus and cmesh.
	hopFlits := make(map[string]int64)
	hopRouterFlits := make(map[string]int64)
	for _, r := range rows {
		meanHops := 0.0
		if r.Flits > 0 {
			meanHops = float64(r.RouterFlits) / float64(r.Flits)
		}
		hopFlits[r.Topology] += r.Flits
		hopRouterFlits[r.Topology] += r.RouterFlits
		reduction := 0.0
		if base, ok := baselines[baseKey{r.Model}]; ok && base > 0 {
			reduction = 100 * (base - float64(r.TotalBT)) / base
		}
		scheme, ok := LookupLinkCoding(r.Coding)
		if !ok {
			return nil, fmt.Errorf("nocbt: topology row names unknown coding %q", r.Coding)
		}
		extraLines := 0
		if scheme != nil {
			extraLines = scheme.ExtraLines(r.Geometry.LinkBits)
		}
		// §V-C link power priced on this topology's actual wire budget: the
		// torus pays for its wrap links, the cmesh banks its reduced grid.
		power := hwmodel.DerivedLinkModelFromLinks(linkPairs[r.Topology], r.Geometry.LinkBits, hwmodel.EnergyPerTransitionOurs).
			WithExtraLines(extraLines).
			ReducedPowerW(reduction/100) * 1000
		table.AddRow(r.Model, TopologyDisplayName(r.Topology), r.Ordering.String(), r.Coding,
			linkPairs[r.Topology], r.TotalBT, r.Cycles, meanHops, reduction, power)
	}

	meanHops := make(map[string]float64, len(hopFlits))
	for topo, flits := range hopFlits {
		if flits > 0 {
			meanHops[TopologyDisplayName(topo)] = float64(hopRouterFlits[topo]) / float64(flits)
		}
	}
	links := make(map[string]int, len(linkPairs))
	for topo, pairs := range linkPairs {
		links[TopologyDisplayName(topo)] = pairs
	}
	return &Result{
		Experiment: "topology",
		Title:      "Topology — interconnect × ordering × coding BT comparison (8x8 MC4, fixed-8)",
		Meta: map[string]any{
			"seed":       p.Seed,
			"trained":    p.Trained,
			"topologies": TopologyNames(),
			"codings":    LinkCodingNames(),
			"mean_hops":  meanHops,
			"link_pairs": links,
			"rows":       len(rows),
		},
		Tables: []ResultTable{table},
		Sections: []Section{
			TextSection("Topology — interconnect × ordering × coding BT comparison (8x8 MC4, fixed-8)\n"),
			TableSection(0),
			TextSection("\nMesh is the paper's platform; torus adds wraparound links (dateline VC\n" +
				"classes keep it deadlock-free) cutting mean hop count; cmesh concentrates\n" +
				"4 terminals per router on a quarter-size grid. Link power prices each\n" +
				"topology's actual wire budget via its Links() count — the generalization\n" +
				"of §V-C's hard-coded 112-link mesh figure.\n"),
		},
	}, nil
}
