package nocbt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"nocbt/internal/bitutil"
	"nocbt/internal/core"
	"nocbt/internal/quant"
	"nocbt/internal/stats"
)

// This file implements the paper's *without-NoC* experiments: Fig. 1
// (expectation surface), Tab. I (BT reduction on flit streams), Fig. 9
// (popcount grid before/after ordering) and Figs. 10/11 (bit-level
// distributions). Each is a registered Experiment producing a typed
// *Result; the *Report functions are deprecated shims over the text
// renderer. The with-NoC experiments live in experiments_noc.go.

func init() {
	MustRegister(NewExperiment("fig1",
		"Fig. 1 — E(x, y) bit-transition expectation surface for 32-bit values",
		func(_ context.Context, p Params) (*Result, error) { return fig1Result(p), nil }))
	MustRegister(NewExperiment("table1",
		"Tab. I — BT/flit reduction on linkless weight streams, baseline vs ordered",
		func(_ context.Context, p Params) (*Result, error) { return table1Result(p), nil }))
	MustRegister(NewExperiment("fig9",
		"Fig. 9 — per-lane '1'-bit counts of a weight stream before/after ordering",
		func(_ context.Context, p Params) (*Result, error) { return fig9Result(p), nil }))
	MustRegister(NewExperiment("fig10",
		"Fig. 10 — float-32 per-bit '1' and transition probabilities",
		func(_ context.Context, p Params) (*Result, error) {
			return bitLevelResult("fig10", bitutil.Float32, p), nil
		}))
	MustRegister(NewExperiment("fig11",
		"Fig. 11 — fixed-8 per-bit '1' and transition probabilities",
		func(_ context.Context, p Params) (*Result, error) {
			return bitLevelResult("fig11", bitutil.Fixed8, p), nil
		}))
}

// fig1Result tabulates the Eq. (2) expectation surface E(x, y) for 32-bit
// values — the data behind Fig. 1 — sampled every Params.Step counts.
func fig1Result(p Params) *Result {
	p = p.withDefaults()
	step := p.Step
	grid := core.ExpectationGrid(32)

	table := ResultTable{Name: "expectation", Columns: []string{"x"}}
	for y := 0; y <= 32; y += step {
		table.Columns = append(table.Columns, fmt.Sprintf("y=%d", y))
	}
	var sb strings.Builder
	sb.WriteString("Expectation of BT between two 32-bit numbers, E = x + y - xy/16 (Fig. 1)\n")
	sb.WriteString("rows: x ones in first value; cols: y ones in second value\n\n")
	sb.WriteString("x\\y ")
	for y := 0; y <= 32; y += step {
		fmt.Fprintf(&sb, "%6d", y)
	}
	sb.WriteString("\n")
	for x := 0; x <= 32; x += step {
		row := []any{x}
		fmt.Fprintf(&sb, "%3d ", x)
		for y := 0; y <= 32; y += step {
			fmt.Fprintf(&sb, "%6.1f", grid[x][y])
			row = append(row, grid[x][y])
		}
		sb.WriteString("\n")
		table.AddRow(row...)
	}
	return &Result{
		Experiment: "fig1",
		Title:      "Fig. 1 — expectation of BT between two 32-bit numbers",
		Meta:       map[string]any{"step": step, "bits": 32},
		Tables:     []ResultTable{table},
		Sections:   []Section{TextSection(sb.String())},
	}
}

// Fig1Report tabulates the Eq. (2) expectation surface E(x, y) for 32-bit
// values — the data behind Fig. 1 — as a textual grid sampled every `step`
// counts.
//
// Deprecated: run the registered "fig1" experiment and Render the Result.
func Fig1Report(step int) string {
	return mustText(fig1Result(Params{Step: step}))
}

// mustText renders a result's text form; the section scripts built by this
// package are statically correct, so a render error is a bug.
func mustText(r *Result) string {
	s, err := Render(r, Text)
	if err != nil {
		panic(err)
	}
	return s
}

// WeightSource names the four Tab. I weight populations.
type WeightSource struct {
	// Name matches the paper's row label, e.g. "Float-32 random".
	Name string
	// Format is the lane encoding.
	Format bitutil.Format
	// Trained selects trained LeNet weights instead of random init.
	Trained bool
}

// Table1Sources returns the four rows of Tab. I in paper order.
func Table1Sources() []WeightSource {
	return []WeightSource{
		{Name: "Float-32 random", Format: bitutil.Float32},
		{Name: "Fixed-8 random", Format: bitutil.Fixed8},
		{Name: "Float-32 trained", Format: bitutil.Float32, Trained: true},
		{Name: "Fixed-8 trained", Format: bitutil.Fixed8, Trained: true},
	}
}

// weightWords draws `count` weight values from the LeNet weight population
// (kernel-sized groups, matching the paper's packetization) and encodes
// them in the requested format. Fixed-8 quantization uses per-layer scales,
// matching the accelerator's per-layer quantizer.
func weightWords(src WeightSource, count int, seed int64) []bitutil.Word {
	var model *Model
	if src.Trained {
		model = TrainedLeNet(seed)
	} else {
		model = LeNet(seed)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	out := make([]bitutil.Word, count)
	if src.Format == bitutil.Fixed8 {
		var qs []int8
		for _, layer := range model.LayerWeightSlices() {
			qs = append(qs, quant.Choose(layer).QuantizeSlice(layer)...)
		}
		for i := range out {
			out[i] = bitutil.Fixed8Word(qs[rng.Intn(len(qs))])
		}
		return out
	}
	weights := model.WeightValues()
	for i := range out {
		out[i] = bitutil.Float32Word(weights[rng.Intn(len(weights))])
	}
	return out
}

// Table1Config parameterizes the without-NoC experiment.
type Table1Config struct {
	// Packets is the stream length (paper: 10,000).
	Packets int
	// KernelSize is the weights per packet before padding (paper's LeNet
	// conv kernel: 25).
	KernelSize int
	// LanesPerFlit is the flit width in values (paper: 8).
	LanesPerFlit int
	// Seed fixes the weight sampling.
	Seed int64
}

// DefaultTable1Config returns the paper's setup: 10,000 packets of one 5×5
// kernel each, 8 weights per flit.
func DefaultTable1Config() Table1Config {
	return Table1Config{Packets: 10_000, KernelSize: 25, LanesPerFlit: 8, Seed: 1}
}

// Table1Row is one measured row of Tab. I.
type Table1Row struct {
	Source       WeightSource
	FlitBits     int
	Flits        int
	BaselineBT   float64 // BTs per flit, unordered stream
	OrderedBT    float64 // BTs per flit after global descending ordering
	ReductionPct float64
}

// Table1 reproduces Tab. I: BT per flit on a linkless flit stream, baseline
// versus '1'-bit-count descending ordering, for the four weight sources.
//
// Methodology (matching §V-A): each packet carries one kernel's weights,
// zero-padded to a whole number of flits; the baseline stream transmits
// packets in generation order; the ordered stream globally sorts all values
// (padding zeros included — they sink to the tail) and repacks sequentially.
func Table1(cfg Table1Config) []Table1Row {
	if cfg.Packets <= 0 || cfg.KernelSize <= 0 || cfg.LanesPerFlit <= 0 {
		panic(fmt.Sprintf("nocbt: bad Table1 config %+v", cfg))
	}
	flitsPerPacket := (cfg.KernelSize + cfg.LanesPerFlit - 1) / cfg.LanesPerFlit
	padded := flitsPerPacket * cfg.LanesPerFlit

	rows := make([]Table1Row, 0, 4)
	for _, src := range Table1Sources() {
		width := src.Format.Bits()
		words := weightWords(src, cfg.Packets*cfg.KernelSize, cfg.Seed)

		// Build the padded stream packet by packet.
		stream := make([]bitutil.Word, 0, cfg.Packets*padded)
		for p := 0; p < cfg.Packets; p++ {
			stream = append(stream, words[p*cfg.KernelSize:(p+1)*cfg.KernelSize]...)
			for i := cfg.KernelSize; i < padded; i++ {
				stream = append(stream, 0)
			}
		}

		baselineFlits := core.PackSequential(stream, cfg.LanesPerFlit, 0)
		ordered, _ := core.OrderDescending(stream, width)
		orderedFlits := core.PackSequential(ordered, cfg.LanesPerFlit, 0)

		nFlits := len(baselineFlits)
		baseBT := float64(core.StreamTransitions(baselineFlits, width)) / float64(nFlits-1)
		ordBT := float64(core.StreamTransitions(orderedFlits, width)) / float64(nFlits-1)
		rows = append(rows, Table1Row{
			Source:       src,
			FlitBits:     width * cfg.LanesPerFlit,
			Flits:        nFlits,
			BaselineBT:   baseBT,
			OrderedBT:    ordBT,
			ReductionPct: 100 * stats.ReductionRate(baseBT, ordBT),
		})
	}
	return rows
}

// table1Params resolves the effective Tab. I stream configuration from the
// experiment parameters.
func table1Params(p Params) Table1Config {
	p = p.withDefaults()
	cfg := p.Table1
	if cfg == (Table1Config{}) {
		cfg = DefaultTable1Config()
		cfg.Seed = p.Seed
		if p.Quick {
			cfg.Packets = 500
		}
	}
	return cfg
}

// table1Result measures Tab. I with the registry's parameter defaulting
// (zero config → the paper's setup at Params.Seed).
func table1Result(p Params) *Result {
	return table1ResultFor(table1Params(p))
}

// table1ResultFor measures Tab. I for the configuration exactly as given —
// the deprecated Table1Report shim routes here, so its v1 semantics
// (including Table1's panic on an invalid config) are preserved.
func table1ResultFor(cfg Table1Config) *Result {
	paper := map[string][3]float64{
		"Float-32 random":  {113.27, 90.18, 20.38},
		"Fixed-8 random":   {31.01, 22.42, 27.70},
		"Float-32 trained": {112.80, 91.46, 18.92},
		"Fixed-8 trained":  {30.55, 13.73, 55.71},
	}
	table := ResultTable{
		Name: "table1",
		Columns: []string{"Weights", "Flit bits", "BT/flit base", "BT/flit ordered",
			"Reduction %", "paper base", "paper ordered", "paper %"},
	}
	for _, r := range Table1(cfg) {
		pv := paper[r.Source.Name]
		table.AddRow(r.Source.Name, r.FlitBits, r.BaselineBT, r.OrderedBT, r.ReductionPct,
			pv[0], pv[1], pv[2])
	}
	return &Result{
		Experiment: "table1",
		Title:      "Tab. I — BT reduction without NoC",
		Meta: map[string]any{
			"packets": cfg.Packets, "kernel_size": cfg.KernelSize,
			"lanes_per_flit": cfg.LanesPerFlit, "seed": cfg.Seed,
		},
		Tables: []ResultTable{table},
		Sections: []Section{
			TextSection("Tab. I — BT reduction without NoC\n"),
			TableSection(0),
		},
	}
}

// Table1Report renders the measured Tab. I next to the paper's numbers.
//
// Deprecated: run the registered "table1" experiment and Render the Result.
func Table1Report(cfg Table1Config) string {
	return mustText(table1ResultFor(cfg))
}

// fig9Result renders the per-flit popcount grid of a small weight stream
// before and after ordering — the paper's Fig. 9 visualization — and
// records the counts as typed tables.
func fig9Result(p Params) *Result {
	p = p.withDefaults()
	flitsToShow := p.Flits
	cfg := DefaultTable1Config()
	src := WeightSource{Name: "Fixed-8 trained", Format: bitutil.Fixed8, Trained: true}
	words := weightWords(src, flitsToShow*cfg.LanesPerFlit, cfg.Seed)

	baseline := core.PackSequential(words, cfg.LanesPerFlit, 0)
	ordered, _ := core.OrderDescending(words, 8)
	orderedFlits := core.PackSequential(ordered, cfg.LanesPerFlit, 0)

	var sb strings.Builder
	sb.WriteString("Fig. 9 — '1'-bit counts per lane, before ordering (left) / after (right)\n\n")
	sb.WriteString("Before:\n")
	sb.WriteString(stats.RenderPopcountGrid(baseline, 8, flitsToShow))
	sb.WriteString("\nAfter '1'-bit count descending ordering:\n")
	sb.WriteString(stats.RenderPopcountGrid(orderedFlits, 8, flitsToShow))

	popcounts := func(name string, flits [][]bitutil.Word) ResultTable {
		t := ResultTable{Name: name, Columns: []string{"flit"}}
		for lane := 0; lane < cfg.LanesPerFlit; lane++ {
			t.Columns = append(t.Columns, fmt.Sprintf("lane%d", lane))
		}
		for i, f := range flits {
			if i >= flitsToShow {
				break
			}
			row := []any{i}
			for _, w := range f {
				row = append(row, w.OnesCount(8))
			}
			t.AddRow(row...)
		}
		return t
	}
	return &Result{
		Experiment: "fig9",
		Title:      "Fig. 9 — '1'-bit counts per lane before/after ordering",
		Meta:       map[string]any{"flits": flitsToShow, "seed": cfg.Seed, "source": src.Name},
		Tables:     []ResultTable{popcounts("before", baseline), popcounts("after", orderedFlits)},
		Sections:   []Section{TextSection(sb.String())},
	}
}

// Fig9Report renders the per-flit popcount grid of a small weight stream
// before and after ordering — the paper's Fig. 9 visualization.
//
// Deprecated: run the registered "fig9" experiment and Render the Result.
func Fig9Report(flitsToShow int) string {
	return mustText(fig9Result(Params{Flits: flitsToShow}))
}

// bitLevelResult reproduces Fig. 10 (float-32) or Fig. 11 (fixed-8): the
// per-bit-position '1' probability for random and trained weights, and the
// per-position transition probability for baseline versus ordered streams.
func bitLevelResult(name string, format bitutil.Format, p Params) *Result {
	p = p.withDefaults()
	cfg := DefaultTable1Config()
	width := format.Bits()
	fig := "Fig. 10 (float-32)"
	if format == bitutil.Fixed8 {
		fig = "Fig. 11 (fixed-8)"
	}

	table := ResultTable{
		Name:    "bit_stats",
		Columns: []string{"weights", "bit", "p_one", "p_transition_base", "p_transition_ordered"},
	}
	meta := map[string]any{"format": format.String(), "seed": cfg.Seed}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — bit distribution and transition probability\n\n", fig)
	for _, trained := range []bool{false, true} {
		wname := "random"
		if trained {
			wname = "trained"
		}
		src := WeightSource{Format: format, Trained: trained}
		words := weightWords(src, 2000*cfg.LanesPerFlit, cfg.Seed)

		dist := stats.BitDist(words, width)
		labels := make([]string, width)
		for i := range labels {
			labels[i] = fmt.Sprintf("bit %2d", width-1-i)
		}
		fmt.Fprintf(&sb, "P('1') per bit position, %s weights (MSB first):\n", wname)
		sb.WriteString(stats.RenderBars(labels, dist.MSBFirst(), 1, 40))

		baseline := core.PackSequential(words, cfg.LanesPerFlit, 0)
		ordered, _ := core.OrderDescending(words, width)
		orderedFlits := core.PackSequential(ordered, cfg.LanesPerFlit, 0)
		bd := stats.TransitionDist(baseline, width)
		od := stats.TransitionDist(orderedFlits, width)
		fmt.Fprintf(&sb, "\nP(transition) per bit position, %s weights (MSB first; baseline vs ordered):\n", wname)
		for i := 0; i < width; i++ {
			fmt.Fprintf(&sb, "bit %2d  base %.4f  ordered %.4f\n",
				width-1-i, bd.MSBFirst()[i], od.MSBFirst()[i])
			table.AddRow(wname, width-1-i, dist.MSBFirst()[i], bd.MSBFirst()[i], od.MSBFirst()[i])
		}
		fmt.Fprintf(&sb, "mean toggle rate: baseline %.4f, ordered %.4f\n\n", bd.Mean(), od.Mean())
		meta["mean_toggle_base_"+wname] = bd.Mean()
		meta["mean_toggle_ordered_"+wname] = od.Mean()
	}
	return &Result{
		Experiment: name,
		Title:      fig + " — bit distribution and transition probability",
		Meta:       meta,
		Tables:     []ResultTable{table},
		Sections:   []Section{TextSection(sb.String())},
	}
}

// BitLevelReport reproduces Fig. 10 (float-32) or Fig. 11 (fixed-8): the
// per-bit-position '1' probability for random and trained weights, and the
// per-position transition probability for baseline versus ordered streams.
//
// Deprecated: run the registered "fig10"/"fig11" experiment and Render the
// Result.
func BitLevelReport(format bitutil.Format) string {
	name := "fig10"
	if format == bitutil.Fixed8 {
		name = "fig11"
	}
	return mustText(bitLevelResult(name, format, Params{}))
}
