package nocbt

// The experiment registry — pillar two of the v2 API. Every paper table
// and figure (and the open sweep grid) is an Experiment: a named, described
// unit that turns Params into a typed *Result under a context. The
// package-level registry makes the set enumerable, so tools like cmd/btexp
// list and run experiments without hardcoding them, and new experiments
// register themselves without touching the driver.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"nocbt/internal/flit"
)

// Params carries the knobs shared by the registered experiments. The zero
// value selects every default (untrained weights, full-size streams);
// experiments ignore fields they have no use for.
type Params struct {
	// Seed fixes weight initialization, training and input synthesis.
	// Every value is honored as given — 0 is a valid seed, as it was for
	// the v1 report functions (cmd/btexp defaults its -seed flag to 1).
	Seed int64
	// Trained selects converged weights for the with-NoC experiments
	// (Fig. 12/13). The bit-level experiments always compare random vs
	// trained populations, as the paper's figures do.
	Trained bool
	// Quick shrinks stream lengths for a fast pass (Tab. I drops from
	// 10,000 to 500 packets).
	Quick bool
	// Step is the Fig. 1 grid sampling step (0 → 4).
	Step int
	// Flits is the number of flits the Fig. 9 grids display (0 → 20).
	Flits int
	// Table1 overrides the Tab. I stream configuration; the zero value
	// uses the paper's setup (10,000 packets, 25-value kernels, 8 lanes).
	Table1 Table1Config
	// BTReductionPct is the §V-C reduction rate applied to the link-power
	// model (0 → 40.85, the paper's best with-NoC figure).
	BTReductionPct float64
	// Sweep configures the "sweep" experiment's grid; nil sweeps the
	// paper's full default grid.
	Sweep *SweepSpec
}

// withDefaults resolves the zero values shared across experiments. Seed
// is deliberately not defaulted: 0 is a valid seed.
func (p Params) withDefaults() Params {
	if p.Step <= 0 {
		p.Step = 4
	}
	if p.Flits <= 0 {
		p.Flits = 20
	}
	if p.BTReductionPct == 0 {
		p.BTReductionPct = 40.85
	}
	return p
}

// Experiment is one runnable unit of the paper's evaluation.
type Experiment interface {
	// Name is the registry key (e.g. "fig12"), unique and stable.
	Name() string
	// Describe is a one-line human summary for listings.
	Describe() string
	// Run executes the experiment under ctx and returns its typed result.
	// Long runs honor context cancellation and deadlines.
	Run(ctx context.Context, p Params) (*Result, error)
}

// funcExperiment adapts a closure to the Experiment interface.
type funcExperiment struct {
	name     string
	describe string
	run      func(ctx context.Context, p Params) (*Result, error)
}

func (e funcExperiment) Name() string     { return e.name }
func (e funcExperiment) Describe() string { return e.describe }
func (e funcExperiment) Run(ctx context.Context, p Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.run(ctx, p)
}

// NewExperiment wraps a run function as a registrable Experiment.
func NewExperiment(name, describe string, run func(ctx context.Context, p Params) (*Result, error)) Experiment {
	return funcExperiment{name: name, describe: describe, run: run}
}

// registry is the package-level experiment index.
var registry = struct {
	mu sync.RWMutex
	m  map[string]Experiment
}{m: make(map[string]Experiment)}

// Register adds an experiment to the package registry. Empty and duplicate
// names are rejected.
func Register(e Experiment) error {
	if e == nil || e.Name() == "" {
		return fmt.Errorf("nocbt: experiment with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[e.Name()]; dup {
		return fmt.Errorf("nocbt: experiment %q already registered", e.Name())
	}
	registry.m[e.Name()] = e
	return nil
}

// MustRegister is Register for init-time registration; it panics on error.
func MustRegister(e Experiment) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// LookupExperiment returns the named experiment, if registered.
func LookupExperiment(name string) (Experiment, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.m[name]
	return e, ok
}

// Experiments returns every registered experiment sorted by name.
func Experiments() []Experiment {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Experiment, 0, len(registry.m))
	for _, e := range registry.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ExperimentNames returns the sorted registered names.
func ExperimentNames() []string {
	exps := Experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name()
	}
	return names
}

// fingerprintParams is the canonical, JSON-stable shadow of Params used
// for content addressing. Defaults are resolved before hashing so that
// parameter sets an experiment cannot distinguish (e.g. Step 0 vs Step 4)
// share one address. Sweep platforms hash as name plus the content
// addresses of the configs they build (the Build func itself is not
// serializable, but what it constructs is).
type fingerprintParams struct {
	Seed           int64             `json:"seed"`
	Trained        bool              `json:"trained"`
	Quick          bool              `json:"quick"`
	Step           int               `json:"step"`
	Flits          int               `json:"flits"`
	Table1         Table1Config      `json:"table1"`
	BTReductionPct float64           `json:"bt_reduction_pct"`
	Sweep          *fingerprintSweep `json:"sweep,omitempty"`
}

type fingerprintSweep struct {
	// Platforms carries, per swept platform, its name plus the content
	// address of the config it builds for every swept geometry — so two
	// FixedPlatform axes sharing a display name but wrapping different
	// configurations cannot collide to one cache address.
	Platforms []string `json:"platforms"`
	Formats   []string `json:"formats"`
	Orderings []string `json:"orderings"`
	Models    []string `json:"models"`
	Trained   bool     `json:"trained"`
	Seeds     []int64  `json:"seeds"`
	Batches   []int    `json:"batches"`
	// Codings hashes in canonical display form ("" resolves to "none"), so
	// the two spellings of uncoded links share one address.
	Codings []string `json:"codings"`
	// Precisions is the uniform lane-width axis; omitempty keeps every
	// pre-precision fingerprint byte-identical.
	Precisions []int `json:"precisions,omitempty"`
	// Topologies hashes in canonical display form ("" resolves to "mesh"),
	// so every accepted spelling of the default interconnect shares one
	// address; omitempty keeps pre-topology fingerprints byte-identical.
	Topologies []string `json:"topologies,omitempty"`
	// Workers is deliberately excluded: sweep results are bit-identical
	// for any worker count, so it must not split the address space.
}

// Fingerprint returns the canonical JSON encoding of the parameters —
// the content-address input used by result caches. Two Params values that
// cannot produce different results (after default resolution) fingerprint
// identically.
func (p Params) Fingerprint() ([]byte, error) {
	p = p.withDefaults()
	fp := fingerprintParams{
		Seed:    p.Seed,
		Trained: p.Trained,
		Quick:   p.Quick,
		Step:    p.Step,
		Flits:   p.Flits,
		// Table1 hashes in its effective form (zero resolves to the
		// paper's setup under the run's seed and quick flag), matching
		// what the table1 experiment actually measures.
		Table1:         table1Params(p),
		BTReductionPct: p.BTReductionPct,
	}
	if p.Sweep != nil {
		s := p.Sweep.withDefaults()
		fs := &fingerprintSweep{Trained: s.Trained, Seeds: s.Seeds, Batches: s.Batches, Precisions: s.Precisions}
		for _, pl := range s.Platforms {
			entry := pl.Name
			for _, g := range s.Geometries {
				pfp, err := PlatformFingerprint(pl.Build(g))
				if err != nil {
					return nil, fmt.Errorf("nocbt: fingerprinting sweep platform %q: %w", pl.Name, err)
				}
				entry += "|" + pfp[:16]
			}
			fs.Platforms = append(fs.Platforms, entry)
		}
		for _, g := range s.Geometries {
			fs.Formats = append(fs.Formats, fmt.Sprintf("%s/%d", g.Format, g.LinkBits))
		}
		for _, o := range s.Orderings {
			fs.Orderings = append(fs.Orderings, o.String())
		}
		for _, m := range s.Models {
			fs.Models = append(fs.Models, string(m))
		}
		for _, c := range s.Codings {
			// Hash the canonical form so every accepted spelling of one
			// coding shares an address; unknown names hash as written (the
			// sweep rejects them before any result exists to cache).
			if canonical, ok := flit.CanonicalLinkCodingName(c); ok {
				if canonical == "" {
					c = "none"
				} else {
					c = canonical
				}
			}
			fs.Codings = append(fs.Codings, c)
		}
		for _, tn := range s.Topologies {
			// Same canonicalization contract as Codings: accepted spellings
			// share an address, unknown names hash as written.
			if canonical, ok := CanonicalTopologyName(tn); ok {
				if canonical == "" {
					tn = "mesh"
				} else {
					tn = canonical
				}
			}
			fs.Topologies = append(fs.Topologies, tn)
		}
		fp.Sweep = fs
	}
	return json.Marshal(fp)
}

// ExperimentCacheKey returns the content address of one (experiment,
// params) pair: a SHA-256 hex digest over the experiment name and the
// canonicalized parameters. Deterministic experiments (every registered
// one) can therefore be served from a cache keyed by this string.
func ExperimentCacheKey(name string, p Params) (string, error) {
	fp, err := p.Fingerprint()
	if err != nil {
		return "", fmt.Errorf("nocbt: fingerprinting params for %q: %w", name, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "experiment\x00%s\x00", name)
	h.Write(fp)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RunExperiment looks up and runs a registered experiment in one call,
// failing with the available names when the name is unknown.
func RunExperiment(ctx context.Context, name string, p Params) (*Result, error) {
	e, ok := LookupExperiment(name)
	if !ok {
		return nil, fmt.Errorf("nocbt: unknown experiment %q (available: %v)", name, ExperimentNames())
	}
	return e.Run(ctx, p)
}
