package nocbt_test

// One benchmark per paper table/figure plus the ablations listed in
// DESIGN.md §6. Each bench does one full unit of the experiment per
// iteration and reports the paper's metric (BT/flit, reduction %, …) via
// b.ReportMetric, so `go test -bench .` regenerates the evaluation's rows.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nocbt"
	"nocbt/internal/bitutil"
	"nocbt/internal/businvert"
	"nocbt/internal/core"
	"nocbt/internal/dnn"
	"nocbt/internal/flit"
	"nocbt/internal/hwmodel"
	"nocbt/internal/noc"
	"nocbt/internal/stats"
	"nocbt/internal/tensor"
)

// ---- Fig. 1: expectation surface ----------------------------------------

func BenchmarkFig1ExpectationGrid(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		grid := core.ExpectationGrid(32)
		sink += grid[16][16]
	}
	b.ReportMetric(core.ExpectedBT(16, 16, 32), "E(16,16,32)")
	_ = sink
}

// ---- Tab. I: BT reduction without NoC ------------------------------------

func benchTable1Row(b *testing.B, name string) {
	cfg := nocbt.DefaultTable1Config()
	cfg.Packets = 2000 // keep one iteration under a second; rates converge fast
	var row nocbt.Table1Row
	for i := 0; i < b.N; i++ {
		for _, r := range nocbt.Table1(cfg) {
			if r.Source.Name == name {
				row = r
			}
		}
	}
	b.ReportMetric(row.BaselineBT, "BT/flit-base")
	b.ReportMetric(row.OrderedBT, "BT/flit-ordered")
	b.ReportMetric(row.ReductionPct, "reduction-%")
}

func BenchmarkTableIFloat32Random(b *testing.B)  { benchTable1Row(b, "Float-32 random") }
func BenchmarkTableIFixed8Random(b *testing.B)   { benchTable1Row(b, "Fixed-8 random") }
func BenchmarkTableIFloat32Trained(b *testing.B) { benchTable1Row(b, "Float-32 trained") }
func BenchmarkTableIFixed8Trained(b *testing.B)  { benchTable1Row(b, "Fixed-8 trained") }

// ---- Fig. 9/10/11: bit-level distributions --------------------------------

func BenchmarkFig9PopcountGrid(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n += len(nocbt.Fig9Report(20))
	}
	_ = n
}

func BenchmarkFig10BitDistribution(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n += len(nocbt.BitLevelReport(bitutil.Float32))
	}
	_ = n
}

func BenchmarkFig11BitDistribution(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n += len(nocbt.BitLevelReport(bitutil.Fixed8))
	}
	_ = n
}

// ---- Fig. 12: NoC size sweep ----------------------------------------------

func benchNoCRun(b *testing.B, platform string, cfg nocbt.Platform, ord nocbt.Ordering) {
	model := nocbt.TrainedLeNet(1)
	input := nocbt.SampleInput(model, 7)
	base, err := nocbt.RunModelOnNoC(context.Background(), platform, cfg, nocbt.O0, model, input)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var r nocbt.NoCRunResult
	for i := 0; i < b.N; i++ {
		r, err = nocbt.RunModelOnNoC(context.Background(), platform, cfg, ord, model, input)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.TotalBT), "BT")
	b.ReportMetric(100*(1-float64(r.TotalBT)/float64(base.TotalBT)), "reduction-%")
	b.ReportMetric(float64(r.Cycles), "cycles")
}

func BenchmarkFig12NoC4x4MC2Fixed8O0(b *testing.B) {
	benchNoCRun(b, "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O0)
}
func BenchmarkFig12NoC4x4MC2Fixed8O1(b *testing.B) {
	benchNoCRun(b, "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O1)
}
func BenchmarkFig12NoC4x4MC2Fixed8O2(b *testing.B) {
	benchNoCRun(b, "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O2)
}
func BenchmarkFig12NoC4x4MC2Float32O2(b *testing.B) {
	benchNoCRun(b, "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Float32()), nocbt.O2)
}
func BenchmarkFig12NoC8x8MC4Fixed8O2(b *testing.B) {
	benchNoCRun(b, "8x8 MC4", nocbt.Platform8x8MC4(nocbt.Fixed8()), nocbt.O2)
}
func BenchmarkFig12NoC8x8MC8Fixed8O2(b *testing.B) {
	benchNoCRun(b, "8x8 MC8", nocbt.Platform8x8MC8(nocbt.Fixed8()), nocbt.O2)
}

// ---- Fig. 13: model sweep ---------------------------------------------------

func BenchmarkFig13LeNetFixed8O2(b *testing.B) {
	benchNoCRun(b, "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O2)
}

func BenchmarkFig13DarkNetFixed8O2(b *testing.B) {
	// DarkNet with random weights: one inference is ~10× LeNet's traffic.
	model := nocbt.DarkNet(1)
	input := nocbt.SampleInput(model, 7)
	base, err := nocbt.RunModelOnNoC(context.Background(), "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O0, model, input)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var r nocbt.NoCRunResult
	for i := 0; i < b.N; i++ {
		r, err = nocbt.RunModelOnNoC(context.Background(), "4x4 MC2", nocbt.Platform4x4MC2(nocbt.Fixed8()), nocbt.O2, model, input)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.TotalBT), "BT")
	b.ReportMetric(100*(1-float64(r.TotalBT)/float64(base.TotalBT)), "reduction-%")
}

// ---- Tab. II and §V-C -------------------------------------------------------

func BenchmarkTableIIHardware(b *testing.B) {
	unit := hwmodel.OrderingUnitSpec{Lanes: 16, LaneBits: 8, Affiliated: true}
	router := hwmodel.PaperRouter()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += unit.GE() + router.GE()
	}
	b.ReportMetric(unit.GE()/1000, "unit-kGE")
	b.ReportMetric(router.GE()/1000, "router-kGE")
	b.ReportMetric(unit.PowerW(125e6, 1)*1000, "unit-mW")
	b.ReportMetric(router.PowerW(125e6, 1)*1000, "router-mW")
	_ = sink
}

func BenchmarkLinkPower(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		m := hwmodel.PaperLinkModel(hwmodel.EnergyPerTransitionOurs)
		sink += m.ReducedPowerW(0.4085)
	}
	m := hwmodel.PaperLinkModel(hwmodel.EnergyPerTransitionOurs)
	b.ReportMetric(m.PowerW()*1000, "link-mW")
	b.ReportMetric(m.ReducedPowerW(0.4085)*1000, "reduced-mW")
	_ = sink
}

// ---- Ablations (DESIGN.md §6) ------------------------------------------------

func randWords(n, width int, seed int64) []bitutil.Word {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<uint(width) - 1
	out := make([]bitutil.Word, n)
	for i := range out {
		out[i] = bitutil.Word(rng.Uint64() & mask)
	}
	return out
}

// BenchmarkAblationPacking compares sequential vs column-major placement of
// an ordered packet's values across its flits.
func BenchmarkAblationPacking(b *testing.B) {
	words := randWords(32, 8, 1)
	ordered, _ := core.OrderDescending(words, 8)
	var seqBT, colBT int
	for i := 0; i < b.N; i++ {
		seqBT = core.StreamTransitions(core.PackSequential(ordered, 8, 0), 8)
		colBT = core.StreamTransitions(core.DistributeColumnMajor(ordered, 4, 8, 0), 8)
	}
	b.ReportMetric(float64(seqBT), "BT-sequential")
	b.ReportMetric(float64(colBT), "BT-column-major")
}

// BenchmarkAblationDirection compares descending, ascending and unordered
// streams.
func BenchmarkAblationDirection(b *testing.B) {
	words := randWords(4000, 8, 2)
	var desc, asc, none int
	for i := 0; i < b.N; i++ {
		ordered, _ := core.OrderDescending(words, 8)
		none = core.StreamTransitions(core.PackSequential(words, 8, 0), 8)
		desc = core.StreamTransitions(core.PackSequential(ordered, 8, 0), 8)
		// Ascending = reversed descending.
		rev := make([]bitutil.Word, len(ordered))
		for j := range ordered {
			rev[j] = ordered[len(ordered)-1-j]
		}
		asc = core.StreamTransitions(core.PackSequential(rev, 8, 0), 8)
	}
	b.ReportMetric(float64(none), "BT-unordered")
	b.ReportMetric(float64(desc), "BT-descending")
	b.ReportMetric(float64(asc), "BT-ascending")
}

// BenchmarkAblationScope compares per-packet ordering (what the hardware
// unit does) against whole-stream ordering (the no-NoC upper bound).
func BenchmarkAblationScope(b *testing.B) {
	words := randWords(4000, 8, 3)
	var perPacket, global int
	for i := 0; i < b.N; i++ {
		// Global.
		ordered, _ := core.OrderDescending(words, 8)
		global = core.StreamTransitions(core.PackSequential(ordered, 8, 0), 8)
		// Per 32-value packet.
		var flits [][]bitutil.Word
		for off := 0; off < len(words); off += 32 {
			pkt, _ := core.OrderDescending(words[off:off+32], 8)
			flits = append(flits, core.PackSequential(pkt, 8, 0)...)
		}
		perPacket = core.StreamTransitions(flits, 8)
	}
	b.ReportMetric(float64(global), "BT-global")
	b.ReportMetric(float64(perPacket), "BT-per-packet")
}

// BenchmarkAblationInBandIndex measures what separated-ordering loses when
// its re-pairing index must travel in-band as extra flits.
func BenchmarkAblationInBandIndex(b *testing.B) {
	model := nocbt.LeNet(1)
	input := nocbt.SampleInput(model, 7)
	run := func(inBand bool) int64 {
		cfg := nocbt.Platform4x4MC2(nocbt.Fixed8())
		cfg.Ordering = nocbt.O2
		cfg.InBandIndex = inBand
		eng, err := nocbt.NewEngine(cfg, model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Infer(context.Background(), input); err != nil {
			b.Fatal(err)
		}
		return eng.TotalBT()
	}
	var inBand, outBand int64
	for i := 0; i < b.N; i++ {
		outBand = run(false)
		inBand = run(true)
	}
	b.ReportMetric(float64(outBand), "BT-out-of-band")
	b.ReportMetric(float64(inBand), "BT-in-band")
}

// BenchmarkAblationVC varies the virtual-channel count: more VCs interleave
// more packets on each link, diluting per-packet ordering.
func BenchmarkAblationVC(b *testing.B) {
	model := nocbt.LeNet(1)
	input := nocbt.SampleInput(model, 7)
	run := func(vcs int, ord nocbt.Ordering) int64 {
		cfg := nocbt.Platform4x4MC2(nocbt.Fixed8())
		cfg.Mesh.VCs = vcs
		cfg.Ordering = ord
		eng, err := nocbt.NewEngine(cfg, model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Infer(context.Background(), input); err != nil {
			b.Fatal(err)
		}
		return eng.TotalBT()
	}
	var red1, red4 float64
	for i := 0; i < b.N; i++ {
		red1 = 100 * (1 - float64(run(1, nocbt.O2))/float64(run(1, nocbt.O0)))
		red4 = 100 * (1 - float64(run(4, nocbt.O2))/float64(run(4, nocbt.O0)))
	}
	b.ReportMetric(red1, "reduction-%-1VC")
	b.ReportMetric(red4, "reduction-%-4VC")
}

// BenchmarkAblationSortAlgo compares the hardware latency of the sorting
// network choices §III-B leaves open.
func BenchmarkAblationSortAlgo(b *testing.B) {
	unit := hwmodel.OrderingUnitSpec{Lanes: 16, LaneBits: 8}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += unit.SortLatencyCycles(hwmodel.BubbleSort, false)
	}
	b.ReportMetric(float64(unit.SortLatencyCycles(hwmodel.BubbleSort, false)), "bubble-cycles")
	b.ReportMetric(float64(unit.SortLatencyCycles(hwmodel.BitonicSort, false)), "bitonic-cycles")
	b.ReportMetric(float64(unit.SortLatencyCycles(hwmodel.MergeSort, false)), "merge-cycles")
	_ = sink
}

// BenchmarkAblationVsBusInvert compares '1'-bit-count ordering against
// bus-invert coding (Stan & Burleson, the paper's §II baseline family) on
// the same weight stream. Ordering needs no extra wires; bus-invert adds
// one invert line per segment.
func BenchmarkAblationVsBusInvert(b *testing.B) {
	words := randWords(8000, 8, 8)
	toVecs := func(flits [][]bitutil.Word) []bitutil.Vec {
		out := make([]bitutil.Vec, len(flits))
		for i, f := range flits {
			out[i] = bitutil.PackWords(f, 8, 64)
		}
		return out
	}
	var raw, orderedBT, busInvBT int
	for i := 0; i < b.N; i++ {
		baseline := core.PackSequential(words, 8, 0)
		raw = core.StreamTransitions(baseline, 8)
		ordered, _ := core.OrderDescending(words, 8)
		orderedBT = core.StreamTransitions(core.PackSequential(ordered, 8, 0), 8)
		var err error
		busInvBT, err = businvert.StreamTransitions(toVecs(baseline), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(raw), "BT-raw")
	b.ReportMetric(float64(orderedBT), "BT-ordered")
	b.ReportMetric(float64(busInvBT), "BT-businvert")
}

// ---- Batched inference engine ------------------------------------------------

// batchBenchWorkload is the compute-bound regime the batch engine targets:
// a small, layer-heavy model on the 8×8/MC8 platform with a
// one-MAC-per-cycle PE, so layer tails dominate and a serial mesh idles.
func batchBenchWorkload() (nocbt.Platform, *dnn.Model, []*tensor.Tensor) {
	rng := rand.New(rand.NewSource(1))
	model := &dnn.Model{
		ModelName: "micro",
		InShape:   []int{1, 12, 12},
		Layers: []dnn.Layer{
			dnn.NewConv2D(1, 4, 3, 1, 1, rng),
			dnn.NewReLU(),
			dnn.NewMaxPool2(),
			dnn.NewConv2D(4, 8, 3, 1, 1, rng),
			dnn.NewReLU(),
			dnn.NewMaxPool2(),
			dnn.NewFlatten(),
			dnn.NewLinear(8*3*3, 10, rng),
		},
	}
	inputs := make([]*tensor.Tensor, 8)
	for i := range inputs {
		x := tensor.New(model.InShape...)
		x.Uniform(0, 1, rand.New(rand.NewSource(int64(10+i))))
		inputs[i] = x
	}
	cfg := nocbt.Platform8x8MC8(nocbt.Fixed8())
	cfg.PEComputeCycles = 64
	return cfg, model, inputs
}

// BenchmarkInferSerial is the reference: the batch executed as one Infer
// call per input. Reports simulated cycles per inference — the hardware
// figure-of-merit the simulator exists to measure.
func BenchmarkInferSerial(b *testing.B) {
	cfg, model, inputs := batchBenchWorkload()
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		eng, err := nocbt.NewEngine(cfg, model)
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range inputs {
			if _, err := eng.Infer(context.Background(), in); err != nil {
				b.Fatal(err)
			}
		}
		cycles = eng.Cycles()
	}
	b.ReportMetric(float64(cycles)/float64(len(inputs)), "cycles/inference")
	b.ReportMetric(float64(len(inputs))*1000/float64(cycles), "inf/kcycle")
}

// BenchmarkInferBatch runs the same inputs through Engine.InferBatch under
// PipelinedLayers, all inferences sharing the mesh. The inf/kcycle metric
// must be ≥1.5× the serial benchmark's (pinned exactly by
// TestInferBatchThroughput in internal/accel).
func BenchmarkInferBatch(b *testing.B) {
	cfg, model, inputs := batchBenchWorkload()
	cfg.LayerMode = nocbt.PipelinedLayers
	b.ReportAllocs()
	var st nocbt.BatchStats
	for i := 0; i < b.N; i++ {
		eng, err := nocbt.NewEngine(cfg, model)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.InferBatch(context.Background(), inputs); err != nil {
			b.Fatal(err)
		}
		st = eng.LastBatchStats()
	}
	b.ReportMetric(float64(st.Cycles)/float64(st.Inferences), "cycles/inference")
	b.ReportMetric(st.Throughput(), "inf/kcycle")
	b.ReportMetric(st.AvgLatencyCycles, "avg-latency-cycles")
}

// ---- BENCH_noc.json baseline --------------------------------------------------

// stepBenchSim replicates internal/noc's Step benchmark workloads through
// the package API so the baseline emitter can measure them from here.
// topology/concentration select the interconnect scheme ("" = mesh); the
// traffic pattern is identical across schemes so the per-topology section
// compares stepping cost, not workload shape.
func stepBenchSim(b *testing.B, idle bool, topology string, concentration int) {
	s, err := noc.New(noc.Config{
		Width: 8, Height: 8,
		Topology: topology, Concentration: concentration,
		VCs: 4, BufDepth: 4, LinkBits: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var id uint64
	mkPacket := func(src, dst int) *flit.Packet {
		id++
		payloads := make([]bitutil.Vec, 4)
		for i := range payloads {
			v := bitutil.NewVec(128)
			v.SetField(0, 64, rng.Uint64())
			v.SetField(64, 64, rng.Uint64())
			payloads[i] = v
		}
		hdr := bitutil.NewVec(128)
		hdr.SetField(0, 32, uint64(id))
		return flit.NewPacket(id, src, dst, hdr, payloads)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch {
		case idle && i%256 == 0:
			if err := s.Inject(mkPacket(0, 63)); err != nil {
				b.Fatal(err)
			}
		case !idle && i%16 == 0:
			for n := 0; n < 64; n++ {
				if err := s.Inject(mkPacket(n, (n+17)%64)); err != nil {
					b.Fatal(err)
				}
			}
		}
		s.Step()
		if i%64 == 63 {
			for n := 0; n < 64; n++ {
				s.PopEjected(n)
			}
		}
	}
}

// TestEmitNoCBenchBaseline regenerates the NoC benchmark baseline when
// BENCH_NOC_JSON names an output path (CI does; see
// .github/workflows/ci.yml). The committed BENCH_noc.json at the
// repository root was produced this way, with the pre-optimization Step
// numbers recorded alongside for comparison.
func TestEmitNoCBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_NOC_JSON")
	if path == "" {
		t.Skip("set BENCH_NOC_JSON=<path> to emit the benchmark baseline")
	}
	idle := testing.Benchmark(func(b *testing.B) { stepBenchSim(b, true, "", 0) })
	busy := testing.Benchmark(func(b *testing.B) { stepBenchSim(b, false, "", 0) })

	// Per-topology saturated stepping cost on the same 8×8 terminal grid and
	// traffic pattern; "mesh" repeats the busy number so the section is
	// self-contained.
	perTopo := map[string]interface{}{}
	for _, tc := range []struct {
		name          string
		topology      string
		concentration int
	}{{"mesh", "", 0}, {"torus", "torus", 0}, {"cmesh", "cmesh", 4}} {
		r := testing.Benchmark(func(b *testing.B) { stepBenchSim(b, false, tc.topology, tc.concentration) })
		perTopo[tc.name] = float64(r.T.Nanoseconds()) / float64(r.N)
	}

	cfg, model, inputs := batchBenchWorkload()
	serialEng, err := nocbt.NewEngine(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs {
		if _, err := serialEng.Infer(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	cfg.LayerMode = nocbt.PipelinedLayers
	batchEng, err := nocbt.NewEngine(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batchEng.InferBatch(context.Background(), inputs); err != nil {
		t.Fatal(err)
	}
	st := batchEng.LastBatchStats()

	// Precision axis headline: the same LeNet inference at each fixed lane
	// width, O0/uncoded so the numbers isolate the width effect. Narrower
	// lanes pack more values per 128-bit flit, so flits (and link energy)
	// fall as the width shrinks.
	precRows, err := nocbt.RunSweep(context.Background(), nocbt.SweepSpec{
		Platforms:  []nocbt.NamedPlatform{nocbt.DefaultPlatform()},
		Geometries: []nocbt.Geometry{nocbt.Fixed8()},
		Orderings:  []nocbt.Ordering{nocbt.O0},
		Codings:    []string{"none"},
		Models:     []nocbt.SweepModel{nocbt.LeNetModel},
		Seeds:      []int64{1},
		Precisions: nocbt.FixedWidths(),
	})
	if err != nil {
		t.Fatal(err)
	}
	energy := hwmodel.DefaultEnergyParams()
	perWidth := map[string]interface{}{}
	for _, r := range precRows {
		b := energy.Estimate(hwmodel.Activity{
			MACBitOps:       r.MACBitOps,
			WeightRegBits:   r.WeightRegBits,
			DispatcherBits:  r.FlitBits,
			LinkTransitions: r.TotalBT,
		})
		perWidth[fmt.Sprintf("%d", r.Precision)] = map[string]interface{}{
			"total_bt":         r.TotalBT,
			"flits":            r.Flits,
			"pj_per_inference": b.TotalJ() * 1e12,
		}
	}

	updates := map[string]interface{}{
		"schema": "nocbt-bench-noc/v1",
		"sim_step_ns_per_cycle": map[string]interface{}{
			"idle_8x8":      float64(idle.T.Nanoseconds()) / float64(idle.N),
			"saturated_8x8": float64(busy.T.Nanoseconds()) / float64(busy.N),
		},
		"sim_step_topology": map[string]interface{}{
			"workload":               "saturated 8x8 terminal grid, 128-bit links, fixed-stride traffic",
			"saturated_ns_per_cycle": perTopo,
		},
		"precision": map[string]interface{}{
			"workload":  "LeNet untrained seed 1, 4x4 MC2, 128-bit links, O0/uncoded, uniform lane width",
			"per_width": perWidth,
		},
		"infer": map[string]interface{}{
			"workload":                  "micro 8-layer net, 8x8 MC8 fixed-8, PEComputeCycles=64, batch=8",
			"serial_cycles":             serialEng.Cycles(),
			"batch_cycles":              st.Cycles,
			"speedup":                   float64(serialEng.Cycles()) / float64(st.Cycles),
			"throughput_inf_per_kcycle": st.Throughput(),
			"avg_latency_cycles":        st.AvgLatencyCycles,
		},
	}
	if err := mergeBenchBaseline(path, updates); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// mergeBenchBaseline folds the emitter-owned sections into whatever JSON
// document already exists at path and writes the result back. Sections the
// emitter does not own — the hand-curated sim_step_optimization history, the
// pooling baseline the alloc regression guard reads, notes, and any future
// keys — pass through untouched, so rerunning the emitter never erases them.
// A missing file starts from an empty document.
func mergeBenchBaseline(path string, updates map[string]interface{}) error {
	doc := map[string]interface{}{}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing baseline %s: %w", path, err)
		}
	case !os.IsNotExist(err):
		return err
	}
	for k, v := range updates {
		doc[k] = v
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// TestBenchBaselineMergePreservesCuratedSections is the round-trip pin for
// the emitter's merge behavior: rerunning TestEmitNoCBenchBaseline over a
// baseline file must replace only the sections the emitter owns and keep the
// hand-curated ones (sim_step_optimization, pooling, note) byte-for-byte —
// an emitter that clobbers the file erases the before/after optimization
// history that cannot be regenerated.
func TestBenchBaselineMergePreservesCuratedSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_noc.json")
	curated := map[string]interface{}{
		"schema": "nocbt-bench-noc/v0", // stale: the emitter owns this key
		"note":   "hand-written commentary that must survive",
		"sim_step_optimization": map[string]interface{}{
			"before": map[string]interface{}{"BenchmarkStepSaturated8x8": map[string]interface{}{"ns_per_op": 999.0}},
			"after":  map[string]interface{}{"BenchmarkStepSaturated8x8": map[string]interface{}{"ns_per_op": 111.0}},
		},
		"pooling": map[string]interface{}{
			"after": map[string]interface{}{"BenchmarkStepSaturated8x8": map[string]interface{}{"allocs_per_op": 1.0}},
		},
		"flitize": map[string]interface{}{
			"allocs_tolerance_per_op": 1.0,
			"budgets":                 map[string]interface{}{"BenchmarkFlitizeRoundTrip4Bit": map[string]interface{}{"allocs_per_op": 0.0}},
		},
		"sim_step_ns_per_cycle": map[string]interface{}{"idle_8x8": 1.0}, // stale: emitter-owned
	}
	seed, err := json.Marshal(curated)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, seed, 0o644); err != nil {
		t.Fatal(err)
	}

	updates := map[string]interface{}{
		"schema":                "nocbt-bench-noc/v1",
		"sim_step_ns_per_cycle": map[string]interface{}{"idle_8x8": 2.0, "saturated_8x8": 3.0},
		"sim_step_topology":     map[string]interface{}{"saturated_ns_per_cycle": map[string]interface{}{"torus": 5.0}},
		"infer":                 map[string]interface{}{"serial_cycles": 7.0},
	}
	if err := mergeBenchBaseline(path, updates); err != nil {
		t.Fatal(err)
	}

	read := func() map[string]interface{} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]interface{}{}
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	got := read()
	for _, curatedKey := range []string{"note", "sim_step_optimization", "pooling", "flitize"} {
		if !reflect.DeepEqual(got[curatedKey], curated[curatedKey]) {
			t.Errorf("curated section %q changed by merge:\ngot  %#v\nwant %#v", curatedKey, got[curatedKey], curated[curatedKey])
		}
	}
	for updatedKey, want := range updates {
		if !reflect.DeepEqual(got[updatedKey], want) {
			t.Errorf("emitter-owned section %q not replaced:\ngot  %#v\nwant %#v", updatedKey, got[updatedKey], want)
		}
	}

	// Round trip: merging the same updates again must be a fixed point.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mergeBenchBaseline(path, updates); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("second merge with identical updates changed the file")
	}

	// The committed repo baseline must itself survive a no-op merge: its
	// curated sections are exactly what the emitter must not own.
	repoData, err := os.ReadFile("BENCH_noc.json")
	if err != nil {
		t.Fatal(err)
	}
	repoDoc := map[string]interface{}{}
	if err := json.Unmarshal(repoData, &repoDoc); err != nil {
		t.Fatal(err)
	}
	if _, ok := repoDoc["sim_step_optimization"]; !ok {
		t.Error("committed BENCH_noc.json lost its sim_step_optimization history")
	}
	if _, ok := repoDoc["pooling"]; !ok {
		t.Error("committed BENCH_noc.json has no pooling section for the alloc guard")
	}
}

// ---- Micro-benchmarks of the hot paths ---------------------------------------

func BenchmarkOrderDescending(b *testing.B) {
	words := randWords(4096, 8, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.OrderDescending(words, 8)
	}
}

func BenchmarkVecTransitions(b *testing.B) {
	a := bitutil.NewVec(512)
	c := bitutil.NewVec(512)
	for i := 0; i < 512; i += 3 {
		c.SetBit(i, true)
	}
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Transitions(c)
	}
	_ = sink
}

func BenchmarkFlitize(b *testing.B) {
	g := flit.Fixed8Geometry()
	task := flit.Task{
		Inputs:  randWords(25, 8, 5),
		Weights: randWords(25, 8, 6),
		Bias:    1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := flit.Flitize(g, task, flit.Options{Ordering: flit.Separated}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitionDist(b *testing.B) {
	words := randWords(8000, 8, 7)
	flits := core.PackSequential(words, 8, 0)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += stats.TransitionDist(flits, 8).Mean()
	}
	_ = sink
}
