module nocbt

go 1.22
