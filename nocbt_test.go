package nocbt

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"nocbt/internal/bitutil"
	"nocbt/internal/train"
)

func TestLeNetDeterministicPerSeed(t *testing.T) {
	a := LeNet(3)
	b := LeNet(3)
	wa, wb := a.WeightValues(), b.WeightValues()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c := LeNet(4)
	if c.WeightValues()[0] == wa[0] {
		t.Error("different seeds produced identical first weight")
	}
}

func TestSampleInputShapeMatchesModel(t *testing.T) {
	m := LeNet(1)
	x := SampleInput(m, 2)
	if x.Rank() != 3 || x.Dim(0) != 1 || x.Dim(1) != 32 || x.Dim(2) != 32 {
		t.Errorf("LeNet input shape %v", x.Shape())
	}
	d := DarkNet(1)
	xd := SampleInput(d, 2)
	if xd.Dim(0) != 3 || xd.Dim(1) != 64 {
		t.Errorf("DarkNet input shape %v", xd.Shape())
	}
}

// TestSampleInputNegativeSeed is the regression test for the negative-seed
// panic: seed%10 is negative for negative seeds in Go, and the old
// 1+int(seed%10) sample count made SyntheticDigits allocate a
// negative-capacity slice ("makeslice: cap out of range").
func TestSampleInputNegativeSeed(t *testing.T) {
	m := LeNet(1)
	for _, seed := range []int64{-1, -7, -10, -9999999999} {
		x := SampleInput(m, seed)
		if x == nil || x.Rank() != 3 {
			t.Fatalf("seed %d: bad sample input", seed)
		}
	}
	// The fix must not disturb existing non-negative seeds: the residue
	// normalization is the identity for seed >= 0.
	for _, seed := range []int64{0, 3, 19} {
		a, b := SampleInput(m, seed), SampleInput(m, seed)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("seed %d: SampleInput not deterministic", seed)
			}
		}
	}
}

// TestSampleInputDerivedFromRng pins the fix for SampleInput always
// returning the *last* synthetic digit regardless of the rng: the sample
// index is now drawn from the seed's private rng. The sums below were
// recorded when the fix landed; they pin both seed-determinism and the
// rng-derived choice (for these seeds the picked digit is not the last
// one, which the old implementation always returned).
func TestSampleInputDerivedFromRng(t *testing.T) {
	m := LeNet(1)
	sum := func(x *Tensor) float64 {
		var s float64
		for _, v := range x.Data {
			s += float64(v)
		}
		return s
	}
	pinned := map[int64]float64{
		1: 150.285995, // rng picks digit 0 of 2; the last digit sums to 123.484301
		2: 74.286121,  // rng picks digit 1 of 3; the last digit sums to 69.013895
	}
	for seed, want := range pinned {
		got := sum(SampleInput(m, seed))
		if diff := got - want; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("seed %d: SampleInput sum = %.6f, want %.6f", seed, got, want)
		}
	}
	// rng-derived choice must differ from the old always-the-last behavior
	// for at least one seed: seed 1 synthesizes 2 digits and picks index 0.
	rng := rand.New(rand.NewSource(1))
	ds := train.SyntheticDigits(2, m.InShape, rng)
	if got, last := sum(SampleInput(m, 1)), sum(ds.Samples[len(ds.Samples)-1].Image); got == last {
		t.Errorf("SampleInput(1) still returns the last synthetic digit (sum %.6f)", got)
	}
}

// TestRunModelBatchOnNoC exercises the public batch measurement path and
// its consistency with the serial row arithmetic.
func TestRunModelBatchOnNoC(t *testing.T) {
	m := LeNet(1)
	in := SampleInput(m, 3)
	serial, err := RunModelOnNoC(context.Background(), "4x4 MC2", Platform4x4MC2(Fixed8()), O2, m, in)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Batch != 1 || serial.Throughput <= 0 || serial.AvgLatencyCycles != float64(serial.Cycles) {
		t.Fatalf("serial row malformed: %+v", serial)
	}
	batch, err := RunModelBatchOnNoC(context.Background(), "4x4 MC2", Platform4x4MC2(Fixed8()), O2, m, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Batch != 2 || batch.Throughput <= 0 || batch.AvgLatencyCycles <= 0 {
		t.Fatalf("batch row malformed: %+v", batch)
	}
	if batch.Packets != 2*serial.Packets {
		t.Errorf("batch packets %d, want %d", batch.Packets, 2*serial.Packets)
	}
	// Sharing the mesh must not be slower than two serial inferences.
	if batch.Cycles > 2*serial.Cycles {
		t.Errorf("batch cycles %d above 2x serial %d", batch.Cycles, 2*serial.Cycles)
	}
	// batch 1 delegates to the serial row; non-positive sizes are errors.
	one, err := RunModelBatchOnNoC(context.Background(), "4x4 MC2", Platform4x4MC2(Fixed8()), O2, m, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one != serial {
		t.Errorf("batch-1 row %+v differs from serial row %+v", one, serial)
	}
	if _, err := RunModelBatchOnNoC(context.Background(), "4x4 MC2", Platform4x4MC2(Fixed8()), O2, m, in, 0); err == nil {
		t.Error("batch size 0 not rejected")
	}
}

func TestGeometryPresets(t *testing.T) {
	if Float32().LinkBits != 512 || Fixed8().LinkBits != 128 {
		t.Error("geometry presets wrong")
	}
	if len(Orderings()) != 3 {
		t.Error("orderings wrong")
	}
}

func TestPlatformPresets(t *testing.T) {
	p := Platform4x4MC2(Fixed8())
	if p.Mesh.Width != 4 || len(p.MCs) != 2 {
		t.Errorf("4x4MC2 = %+v", p)
	}
	if p8 := Platform8x8MC8(Float32()); p8.Mesh.Width != 8 || len(p8.MCs) != 8 {
		t.Errorf("8x8MC8 wrong")
	}
}

func TestFig1Report(t *testing.T) {
	out := Fig1Report(8)
	if !strings.Contains(out, "E = x + y - xy/16") {
		t.Error("Fig. 1 formula missing")
	}
	// Corner values: E(32,0) = 32.0 appears; E(0,0) = 0.0.
	if !strings.Contains(out, "32.0") || !strings.Contains(out, "0.0") {
		t.Errorf("Fig. 1 grid values missing:\n%s", out)
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("uses trained LeNet; skipped in -short mode")
	}
	cfg := Table1Config{Packets: 300, KernelSize: 25, LanesPerFlit: 8, Seed: 1}
	rows := Table1(cfg)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaselineBT <= 0 || r.OrderedBT <= 0 {
			t.Errorf("%s: degenerate BT values %v/%v", r.Source.Name, r.BaselineBT, r.OrderedBT)
		}
		if r.OrderedBT >= r.BaselineBT {
			t.Errorf("%s: ordering did not reduce BT (%v -> %v)",
				r.Source.Name, r.BaselineBT, r.OrderedBT)
		}
	}
	// The paper's headline shape: fixed-8 trained shows the largest
	// reduction of all four rows.
	best := rows[0]
	for _, r := range rows[1:] {
		if r.ReductionPct > best.ReductionPct {
			best = r
		}
	}
	if best.Source.Name != "Fixed-8 trained" {
		t.Errorf("largest reduction is %s (%.1f%%), paper says Fixed-8 trained",
			best.Source.Name, best.ReductionPct)
	}
}

func TestTable1BadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Table1(Table1Config{})
}

func TestFig9Report(t *testing.T) {
	if testing.Short() {
		t.Skip("uses trained LeNet; skipped in -short mode")
	}
	out := Fig9Report(6)
	if !strings.Contains(out, "Before:") || !strings.Contains(out, "After") {
		t.Errorf("Fig. 9 sections missing:\n%s", out)
	}
	if !strings.Contains(out, "flit   0") {
		t.Errorf("grid rows missing:\n%s", out)
	}
}

func TestBitLevelReportFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("uses trained LeNet; skipped in -short mode")
	}
	out := BitLevelReport(bitutil.Float32)
	if !strings.Contains(out, "Fig. 10") {
		t.Error("wrong figure label")
	}
	if !strings.Contains(out, "bit 31") {
		t.Error("sign bit row missing")
	}
	if !strings.Contains(out, "mean toggle rate") {
		t.Error("toggle summary missing")
	}
}

func TestBitLevelReportFixed8(t *testing.T) {
	if testing.Short() {
		t.Skip("uses trained LeNet; skipped in -short mode")
	}
	out := BitLevelReport(bitutil.Fixed8)
	if !strings.Contains(out, "Fig. 11") {
		t.Error("wrong figure label")
	}
	if !strings.Contains(out, "bit  7") {
		t.Error("MSB row missing")
	}
}

func TestTable2Report(t *testing.T) {
	out := Table2Report()
	for _, want := range []string{"ordering unit", "router", "12.91", "125.54", "bubble 16"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tab. II report missing %q:\n%s", want, out)
		}
	}
}

func TestLinkPowerReport(t *testing.T) {
	out := LinkPowerReport(40.85)
	for _, want := range []string{"155.01", "476.67", "91.69", "281.95"} {
		if !strings.Contains(out, want) {
			t.Errorf("link power report missing %q:\n%s", want, out)
		}
	}
}

func TestRunModelOnNoCQuick(t *testing.T) {
	// Small end-to-end check through the facade with random weights.
	m := LeNet(1)
	r, err := RunModelOnNoC(context.Background(), "4x4 MC2", Platform4x4MC2(Fixed8()), O1, m, SampleInput(m, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBT <= 0 || r.Cycles <= 0 || r.Packets <= 0 {
		t.Errorf("degenerate run result: %+v", r)
	}
	if r.Ordering != O1 || r.Model != "LeNet" {
		t.Errorf("metadata wrong: %+v", r)
	}
}

func TestTrainedModelMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("trains LeNet; skipped in -short mode")
	}
	a := TrainedLeNet(1)
	b := TrainedLeNet(1)
	if a != b {
		t.Error("TrainedLeNet not memoized")
	}
}
