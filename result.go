package nocbt

// Typed experiment results and the shared render layer. Every registered
// Experiment returns a *Result: structured tables of typed rows plus the
// metadata of the run, with a section script describing how the paper's
// text rendering is assembled from them. One Result renders as an aligned
// text report (byte-identical to the pre-v2 *Report strings), as JSON for
// machine consumers, or as CSV for spreadsheets — the renderer is shared,
// experiments only produce data.

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nocbt/internal/stats"
)

// ResultTable is one table of typed rows. Cells are JSON-serializable
// scalars (strings, ints, int64s, float64s); the text and CSV renderers
// format float64 cells with two decimals, matching the paper tables.
type ResultTable struct {
	// Name labels the table in multi-table results and CSV output.
	Name    string   `json:"name,omitempty"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// AddRow appends one row of typed cells.
func (t *ResultTable) AddRow(cells ...any) {
	t.Rows = append(t.Rows, cells)
}

// Section is one step of a Result's text rendering: verbatim text, or an
// aligned rendering of one of the result's tables. The zero value is a
// (possibly empty) text section, so a natural struct literal
// Section{Text: "…"} behaves as written.
type Section struct {
	// Text is written verbatim by the text renderer (ignored when
	// HasTable is set).
	Text string `json:"text,omitempty"`
	// HasTable selects table rendering; Table then indexes Result.Tables.
	HasTable bool `json:"has_table,omitempty"`
	Table    int  `json:"table,omitempty"`
}

// TextSection returns a verbatim-text section.
func TextSection(text string) Section { return Section{Text: text} }

// TableSection returns a section rendering Tables[i] as an aligned grid.
func TableSection(i int) Section { return Section{HasTable: true, Table: i} }

// Result is the structured outcome of one Experiment run.
type Result struct {
	// Experiment is the registered name the result came from.
	Experiment string `json:"experiment"`
	// Title is the paper-facing headline (e.g. "Tab. I — BT reduction
	// without NoC").
	Title string `json:"title"`
	// Meta records the parameters and derived scalars of the run.
	Meta map[string]any `json:"meta,omitempty"`
	// Tables holds the typed data.
	Tables []ResultTable `json:"tables"`
	// Sections scripts the text rendering. Empty means: title line (when
	// set) followed by every table.
	Sections []Section `json:"-"`
}

// Format selects a rendering of a Result.
type Format int

const (
	// Text renders the paper-style aligned report (the default).
	Text Format = iota
	// JSON renders the full structured result as indented JSON.
	JSON
	// CSV renders the result's tables as comma-separated values.
	CSV
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case Text:
		return "table"
	case JSON:
		return "json"
	case CSV:
		return "csv"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat maps a command-line format name onto a Format. Accepted:
// "table" (or "text"), "json", "csv".
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "table", "text", "":
		return Text, nil
	case "json":
		return JSON, nil
	case "csv":
		return CSV, nil
	default:
		return Text, fmt.Errorf("nocbt: unknown format %q (want table, json or csv)", name)
	}
}

// Render renders the result in the requested format.
func Render(r *Result, f Format) (string, error) {
	var sb strings.Builder
	if err := WriteResult(&sb, r, f); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// WriteResult streams the rendered result to w.
func WriteResult(w io.Writer, r *Result, f Format) error {
	if r == nil {
		return fmt.Errorf("nocbt: nil result")
	}
	switch f {
	case Text:
		return writeText(w, r)
	case JSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	case CSV:
		return writeCSV(w, r)
	default:
		return fmt.Errorf("nocbt: unknown render format %v", f)
	}
}

// writeText assembles the section script (or the default title+tables
// layout) with the repository's standard table formatter.
func writeText(w io.Writer, r *Result) error {
	sections := r.Sections
	if len(sections) == 0 {
		if r.Title != "" {
			sections = append(sections, TextSection(r.Title+"\n"))
		}
		for i := range r.Tables {
			sections = append(sections, TableSection(i))
		}
	}
	for _, sec := range sections {
		if !sec.HasTable {
			if _, err := io.WriteString(w, sec.Text); err != nil {
				return err
			}
			continue
		}
		if sec.Table < 0 || sec.Table >= len(r.Tables) {
			return fmt.Errorf("nocbt: result section references table %d of %d", sec.Table, len(r.Tables))
		}
		tbl := r.Tables[sec.Table]
		t := stats.NewTable(tbl.Columns...)
		for _, row := range tbl.Rows {
			t.AddRowf(row...)
		}
		if _, err := io.WriteString(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// csvCell renders one CSV cell. Unlike the aligned text tables (which
// round float64 to two decimals for the paper layout), CSV is the
// machine-readable surface: floats keep full precision so probability
// columns like fig11's 0.003-scale transition rates survive.
func csvCell(c any) string {
	if v, ok := c.(float64); ok {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return stats.FormatCell(c)
}

// writeCSV emits each table as a header row plus data rows; multiple
// tables are separated by a blank line and announced with a "# name"
// comment row.
func writeCSV(w io.Writer, r *Result) error {
	var buf bytes.Buffer
	for ti, tbl := range r.Tables {
		if ti > 0 {
			buf.WriteString("\n")
		}
		if tbl.Name != "" && len(r.Tables) > 1 {
			fmt.Fprintf(&buf, "# %s\n", tbl.Name)
		}
		cw := csv.NewWriter(&buf)
		if err := cw.Write(tbl.Columns); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = csvCell(c)
			}
			if err := cw.Write(cells); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}
