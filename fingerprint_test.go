package nocbt

import (
	"bytes"
	"testing"
)

// TestParamsFingerprintCanonicalization pins the cache-key contract:
// parameter sets an experiment cannot tell apart must share one content
// address, distinguishable ones must not.
func TestParamsFingerprintCanonicalization(t *testing.T) {
	a, err := Params{}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// The explicit defaults are indistinguishable from the zero value.
	b, err := Params{Step: 4, Flits: 20, BTReductionPct: 40.85}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("zero params and explicit defaults fingerprint differently:\n%s\n%s", a, b)
	}
	c, err := Params{Seed: 2}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds share a fingerprint")
	}
}

func TestParamsFingerprintSweepWorkersExcluded(t *testing.T) {
	mk := func(workers int) Params {
		return Params{Sweep: &SweepSpec{Workers: workers, Seeds: []int64{3}}}
	}
	a, err := mk(1).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(8).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("worker count split the sweep address space (results are worker-invariant)")
	}
	c, err := Params{Sweep: &SweepSpec{Seeds: []int64{4}}}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different sweep seeds share a fingerprint")
	}
}

// TestParamsFingerprintCodingsCanonicalized: the two spellings of uncoded
// links ("" and "none") must share an address, and a real coding must not.
func TestParamsFingerprintCodingsCanonicalized(t *testing.T) {
	mk := func(codings ...string) Params {
		return Params{Sweep: &SweepSpec{Seeds: []int64{1}, Codings: codings}}
	}
	a, err := mk("").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk("none").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error(`"" and "none" codings fingerprint differently`)
	}
	c, err := mk("gray").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("gray coding shares the uncoded fingerprint")
	}
}

// TestPlatformFingerprintLinkCoding: the coding is part of the platform's
// content address ("none" canonicalizes to the uncoded form).
func TestPlatformFingerprintLinkCoding(t *testing.T) {
	plain, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	noneSpelled, err := NewPlatform(WithLinkCoding("none"))
	if err != nil {
		t.Fatal(err)
	}
	coded, err := NewPlatform(WithLinkCoding("businvert"))
	if err != nil {
		t.Fatal(err)
	}
	fPlain, err := PlatformFingerprint(plain)
	if err != nil {
		t.Fatal(err)
	}
	fNone, err := PlatformFingerprint(noneSpelled)
	if err != nil {
		t.Fatal(err)
	}
	fCoded, err := PlatformFingerprint(coded)
	if err != nil {
		t.Fatal(err)
	}
	if fPlain != fNone {
		t.Error(`WithLinkCoding("none") fingerprints differently from the default`)
	}
	if fPlain == fCoded {
		t.Error("businvert platform shares the uncoded fingerprint")
	}
	// Spelling must never split the address space: every accepted casing
	// of a coding name canonicalizes before hashing.
	spelledNone, err := NewPlatform(WithLinkCoding("None"))
	if err != nil {
		t.Fatal(err)
	}
	fSpelledNone, err := PlatformFingerprint(spelledNone)
	if err != nil {
		t.Fatal(err)
	}
	if fSpelledNone != fPlain {
		t.Error(`WithLinkCoding("None") fingerprints differently from the default`)
	}
	spelledBI, err := NewPlatform(WithLinkCoding("BusInvert"))
	if err != nil {
		t.Fatal(err)
	}
	fSpelledBI, err := PlatformFingerprint(spelledBI)
	if err != nil {
		t.Fatal(err)
	}
	if fSpelledBI != fCoded {
		t.Error(`WithLinkCoding("BusInvert") fingerprints differently from "businvert"`)
	}
}

// TestParamsFingerprintTable1Resolution: the zero Table1 config and the
// explicit paper default describe the same measurement, so they must
// share an address (and Quick, which shrinks the stream, must not).
func TestParamsFingerprintTable1Resolution(t *testing.T) {
	a, err := Params{Seed: 1}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Params{Seed: 1, Table1: Table1Config{Packets: 10_000, KernelSize: 25, LanesPerFlit: 8, Seed: 1}}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("zero Table1 and the explicit paper default fingerprint differently")
	}
	c, err := Params{Seed: 1, Quick: true}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("quick and full table1 streams share a fingerprint")
	}
}

// TestParamsFingerprintDistinguishesFixedPlatforms: two sweep axes with
// the same display name but different underlying configs must not collide
// to one cache address.
func TestParamsFingerprintDistinguishesFixedPlatforms(t *testing.T) {
	pa, err := NewPlatform(WithMesh(6, 6), WithMCCount(2))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPlatform(WithMesh(6, 6), WithMCCount(4))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p Platform) Params {
		return Params{Sweep: &SweepSpec{Platforms: []NamedPlatform{FixedPlatform("custom", p)}}}
	}
	a, err := mk(pa).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(pb).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("same-named FixedPlatform axes with different configs share a fingerprint")
	}
}

func TestExperimentCacheKey(t *testing.T) {
	k1, err := ExperimentCacheKey("fig12", Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ExperimentCacheKey("fig12", Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical runs keyed differently")
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}
	k3, err := ExperimentCacheKey("fig13", Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different experiments share a key")
	}
}

func TestPlatformFingerprint(t *testing.T) {
	p1, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := PlatformFingerprint(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Default resolution: a zero DrainCycleCap and the explicit default
	// describe the same platform.
	p2 := p1
	p2.DrainCycleCap = 100_000_000
	f2, err := PlatformFingerprint(p2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("defaulted and explicit DrainCycleCap fingerprint differently")
	}
	p3, err := NewPlatform(WithOrdering(O2))
	if err != nil {
		t.Fatal(err)
	}
	f3, err := PlatformFingerprint(p3)
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f3 {
		t.Error("different orderings share a platform fingerprint")
	}
	if len(f1) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", f1)
	}
}

func TestLookupPaperPlatform(t *testing.T) {
	for name, want := range map[string]string{
		"4x4":      "4x4 MC2",
		"4x4 MC2":  "4x4 MC2",
		"8x8mc4":   "8x8 MC4",
		" 8x8 MC8": "8x8 MC8",
	} {
		p, ok := LookupPaperPlatform(name)
		if !ok || p.Name != want {
			t.Errorf("LookupPaperPlatform(%q) = %q, %v; want %q", name, p.Name, ok, want)
		}
	}
	if _, ok := LookupPaperPlatform("9x9"); ok {
		t.Error("unknown platform resolved")
	}
}
