//go:build !race

package nocbt

// raceEnabled mirrors race_test.go for normal builds.
const raceEnabled = false
