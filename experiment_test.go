package nocbt

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRegistryListsEveryPaperExperiment pins the registered set: every
// table and figure of the paper plus the open sweep grid.
func TestRegistryListsEveryPaperExperiment(t *testing.T) {
	want := []string{"codings", "fig1", "fig10", "fig11", "fig12", "fig13", "fig9", "power", "precision", "sweep", "table1", "table2", "topology"}
	if got := ExperimentNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("registered experiments = %v, want %v", got, want)
	}
	for _, e := range Experiments() {
		if e.Describe() == "" {
			t.Errorf("experiment %q has no description", e.Name())
		}
	}
}

func TestLookupExperiment(t *testing.T) {
	e, ok := LookupExperiment("table1")
	if !ok || e.Name() != "table1" {
		t.Fatalf("LookupExperiment(table1) = %v, %v", e, ok)
	}
	if _, ok := LookupExperiment("nosuch"); ok {
		t.Error("unknown name resolved")
	}
}

func TestRunExperimentUnknownNameListsAvailable(t *testing.T) {
	_, err := RunExperiment(context.Background(), "nosuch", Params{})
	if err == nil {
		t.Fatal("unknown experiment did not fail")
	}
	for _, want := range []string{"nosuch", "fig12", "table1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if err := Register(NewExperiment("", "nameless", nil)); err == nil {
		t.Error("empty name registered")
	}
	if err := Register(NewExperiment("fig1", "imposter", nil)); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration not rejected: %v", err)
	}
}

// TestExperimentTextMatchesPreRedesignGoldens is the satellite's
// equivalence suite: for every ported experiment, the v2 Result's text
// rendering must be byte-identical to the pre-redesign *Report output
// captured in testdata/ on the same seeds.
func TestExperimentTextMatchesPreRedesignGoldens(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		params Params
		// trained experiments need the memoized LeNet training pass.
		needsTrained bool
		// heavy grids run dozens of NoC inferences.
		heavy bool
	}{
		{name: "fig1", golden: "fig1_report", params: Params{Step: 4}},
		{name: "table2", golden: "table2_report"},
		{name: "power", golden: "power_report", params: Params{BTReductionPct: 40.85}},
		{name: "table1", golden: "table1_report",
			params:       Params{Table1: Table1Config{Packets: 300, KernelSize: 25, LanesPerFlit: 8, Seed: 1}},
			needsTrained: true},
		{name: "fig9", golden: "fig9_report", params: Params{Flits: 6}, needsTrained: true},
		{name: "fig10", golden: "fig10_report", needsTrained: true},
		{name: "fig11", golden: "fig11_report", needsTrained: true},
		{name: "fig12", golden: "fig12_report", params: Params{Seed: 1}, heavy: true},
		{name: "fig13", golden: "fig13_report", params: Params{Seed: 1}, heavy: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && (tc.needsTrained || tc.heavy) {
				t.Skip("uses trained LeNet or a full NoC grid; skipped in -short mode")
			}
			if raceEnabled && tc.heavy {
				t.Skip("full figure grid is too slow under the race detector")
			}
			res, err := RunExperiment(context.Background(), tc.name, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			if res.Experiment != tc.name {
				t.Errorf("result experiment = %q, want %q", res.Experiment, tc.name)
			}
			text, err := Render(res, Text)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.golden, text)
		})
	}
}

// TestExperimentResultsAreTyped checks each cheap experiment carries typed
// tables alongside the text script — the structured half of the contract.
func TestExperimentResultsAreTyped(t *testing.T) {
	for _, name := range []string{"fig1", "table2", "power"} {
		res, err := RunExperiment(context.Background(), name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no typed tables", name)
			continue
		}
		for _, tbl := range res.Tables {
			if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Errorf("%s: degenerate table %q", name, tbl.Name)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s/%s: row width %d != %d columns", name, tbl.Name, len(row), len(tbl.Columns))
				}
			}
		}
	}
}

// TestExperimentJSONRoundTrips renders a cheap experiment as JSON and
// decodes it back through encoding/json.
func TestExperimentJSONRoundTrips(t *testing.T) {
	res, err := RunExperiment(context.Background(), "power", Params{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(res, JSON)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("experiment JSON does not round-trip: %v\n%s", err, out)
	}
	if decoded.Experiment != "power" || len(decoded.Tables) != 1 {
		t.Errorf("decoded result = %+v", decoded)
	}
	if decoded.Meta["bt_reduction_pct"].(float64) != 40.85 {
		t.Errorf("meta lost in round-trip: %v", decoded.Meta)
	}
}

// TestSweepCancelledMidRunReturnsCtxErr is the satellite's cancellation
// proof: a context cancelled mid-sweep aborts promptly with ctx.Err()
// instead of simulating the rest of the grid.
func TestSweepCancelledMidRunReturnsCtxErr(t *testing.T) {
	if testing.Short() {
		t.Skip("runs NoC inferences; skipped in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	// The DarkNet grid runs for many seconds uncancelled; 30ms lands the
	// cancel mid-inference.
	_, err := RunSweep(ctx, SweepSpec{
		Platforms:  []NamedPlatform{DefaultPlatform()},
		Geometries: []Geometry{Fixed8()},
		Models:     []SweepModel{DarkNetModel},
		Seeds:      []int64{1},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled sweep took %v to return; not prompt", elapsed)
	}
}

// TestExperimentRunHonorsCancelledContext proves cancellation propagates
// through Experiment.Run for the sweep-backed experiments.
func TestExperimentRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"fig12", "fig13", "sweep"} {
		if _, err := RunExperiment(ctx, name, Params{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s under cancelled context = %v, want context.Canceled", name, err)
		}
	}
}

// TestNonPaperPlatformThroughRegistry is the acceptance scenario end to
// end: a 6×6 mesh with column-placed MCs — inexpressible in the v1 API —
// flows NewPlatform → Experiment.Run → JSON rendering.
func TestNonPaperPlatformThroughRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 NoC inferences; skipped in -short mode")
	}
	p, err := NewPlatform(WithMesh(6, 6), WithMCCount(3), WithMCColumn(0))
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{
		Platforms:  []NamedPlatform{FixedPlatform("6x6 col-MC3", p)},
		Geometries: []Geometry{Fixed8()},
		Models:     []SweepModel{LeNetModel},
		Seeds:      []int64{1},
	}
	res, err := RunExperiment(context.Background(), "sweep", Params{Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(res, JSON)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("sweep JSON invalid: %v", err)
	}
	tbl := decoded.Tables[0]
	if len(tbl.Rows) != 3 { // one row per ordering
		t.Fatalf("got %d rows, want 3:\n%s", len(tbl.Rows), out)
	}
	for _, row := range tbl.Rows {
		if row[0] != "6x6 col-MC3" {
			t.Errorf("row platform = %v, want the composed 6x6 platform", row[0])
		}
	}
	// O2 must still reduce BT on the non-paper topology.
	last := tbl.Rows[2]
	if red, ok := last[len(last)-1].(float64); !ok || red <= 0 {
		t.Errorf("O2 reduction on 6x6 column platform = %v, want > 0", last[len(last)-1])
	}
}
